// Quantized snapshot read path + batcher admission/QoS coverage:
//  * int8 / fp16 round-trip error bounds (measured and analytic)
//  * quantization=none byte-identity with the seed fp32 snapshot format
//  * durable checkpoints stay fp32 in every mode; PublishFromCheckpoint
//    re-encodes at the restoring store's quantization
//  * concurrent readers during quantized publish swaps (TSan hammer)
//  * admission-control shedding and the gold/best-effort weighted dequeue

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "comm/topology.h"
#include "embed/checkpoint.h"
#include "embed/embedding_table.h"
#include "serve/batcher.h"
#include "serve/lookup_service.h"
#include "serve/snapshot_store.h"
#include "tensor/ops.h"

namespace hetgmp {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/hetgmp_quant_" + tag + "_" +
         std::to_string(::getpid());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Deterministic pseudo-random table: mixed magnitudes (including tiny and
// zero rows) so the error-bound checks cover the encoder's edge cases.
void FillTableRandom(EmbeddingTable* table, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> unit(-1.0f, 1.0f);
  for (int64_t x = 0; x < table->num_embeddings(); ++x) {
    float* row = table->UnsafeMutableRow(x);
    // Cycle row magnitudes across 8 decades; every 7th row is all-zero.
    const float mag = std::pow(10.0f, static_cast<float>(x % 8) - 4.0f);
    for (int d = 0; d < table->dim(); ++d) {
      row[d] = (x % 7 == 6) ? 0.0f : unit(rng) * mag;
    }
  }
}

// ------------------------------------------------ round-trip error bounds

TEST(QuantizedSnapshotTest, Int8RoundTripErrorBound) {
  constexpr int64_t kRows = 128;
  constexpr int kDim = 16;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 11);

  SnapshotStoreOptions opts;
  opts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore store(opts);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->quantization(), SnapshotQuantization::kInt8);

  float out[kDim];
  float worst = 0.0f;
  for (int64_t x = 0; x < kRows; ++x) {
    const float* src = table.UnsafeRow(x);
    float max_abs = 0.0f;
    for (int d = 0; d < kDim; ++d) max_abs = std::max(max_abs, std::fabs(src[d]));
    // scale = fp16-round-up(max_abs / 127), error <= scale / 2: the fp16
    // rounding adds <= 2^-10 relative for normal scales plus one 2^-24
    // subnormal ulp when max_abs/127 falls below 2^-14, so max_abs/252
    // with a 2^-25-ish absolute cushion is a safe per-row ceiling. Zero
    // rows must decode exactly.
    const float bound = max_abs / 252.0f + 6e-8f * (max_abs > 0.0f);
    snap->ReadRow(x, out);
    for (int d = 0; d < kDim; ++d) {
      const float err = std::fabs(out[d] - src[d]);
      EXPECT_LE(err, bound) << "row " << x << " dim " << d;
      worst = std::max(worst, err);
    }
  }
  // The snapshot's self-measured bound is exactly the worst element.
  EXPECT_FLOAT_EQ(snap->max_abs_error(), worst);
  EXPECT_GT(snap->max_abs_error(), 0.0f);

  // Decoding is deterministic: a second read is bit-identical.
  float again[kDim];
  snap->ReadRow(5, out);
  snap->ReadRow(5, again);
  EXPECT_EQ(std::memcmp(out, again, sizeof(out)), 0);
}

TEST(QuantizedSnapshotTest, Fp16RoundTripErrorBound) {
  constexpr int64_t kRows = 128;
  constexpr int kDim = 16;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 12);

  SnapshotStoreOptions opts;
  opts.quantization = SnapshotQuantization::kFp16;
  SnapshotStore store(opts);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);

  float out[kDim];
  float worst = 0.0f;
  for (int64_t x = 0; x < kRows; ++x) {
    const float* src = table.UnsafeRow(x);
    snap->ReadRow(x, out);
    for (int d = 0; d < kDim; ++d) {
      // binary16 round-to-nearest: <= 2^-11 relative for normals, plus
      // 2^-25 absolute once the value falls into the subnormal range.
      const float bound = std::fabs(src[d]) / 2048.0f + 3e-8f;
      EXPECT_LE(std::fabs(out[d] - src[d]), bound) << "row " << x;
      worst = std::max(worst, std::fabs(out[d] - src[d]));
    }
  }
  EXPECT_FLOAT_EQ(snap->max_abs_error(), worst);
}

// ------------------------------------------------ sizes and byte-identity

TEST(QuantizedSnapshotTest, Int8PayloadAtLeast3p5xSmaller) {
  constexpr int64_t kRows = 100;
  constexpr int kDim = 16;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  SnapshotStoreOptions opts;
  opts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore store(opts);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  auto snap = store.Acquire();

  const uint64_t fp32_bytes = kRows * kDim * sizeof(float);
  EXPECT_EQ(snap->RowBytes(), static_cast<uint64_t>(kDim) + 2);
  EXPECT_EQ(snap->PayloadBytes(), kRows * (kDim + 2));
  EXPECT_GE(static_cast<double>(fp32_bytes) /
                static_cast<double>(snap->PayloadBytes()),
            3.5);
}

TEST(QuantizedSnapshotTest, NoneByteIdenticalToSeedFormat) {
  constexpr int64_t kRows = 32;
  constexpr int kDim = 8;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 13);

  SnapshotStore store;  // default: quantization = kNone
  ASSERT_TRUE(store.Publish(table, {}).ok());
  auto snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->quantization(), SnapshotQuantization::kNone);
  EXPECT_EQ(snap->RowBytes(), kDim * sizeof(float));

  // The in-memory payload is the table rows, bit for bit.
  ASSERT_NE(snap->Fp32Payload(), nullptr);
  for (int64_t x = 0; x < kRows; ++x) {
    EXPECT_EQ(std::memcmp(snap->Fp32Payload() + x * kDim, table.UnsafeRow(x),
                          kDim * sizeof(float)),
              0);
  }
  // Quantized snapshots do not expose a raw fp32 payload.
  SnapshotStoreOptions qopts;
  qopts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore qstore(qopts);
  ASSERT_TRUE(qstore.Publish(table, {}).ok());
  EXPECT_EQ(qstore.Acquire()->Fp32Payload(), nullptr);
}

TEST(QuantizedSnapshotTest, CheckpointFilesAreFp32InEveryMode) {
  constexpr int64_t kRows = 24;
  constexpr int kDim = 6;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 14);

  // Reference file: the seed checkpoint writer over the exact rows.
  std::vector<float> flat(kRows * kDim);
  for (int64_t x = 0; x < kRows; ++x) {
    std::memcpy(flat.data() + x * kDim, table.UnsafeRow(x),
                kDim * sizeof(float));
  }
  const std::string ref_path = TempPath("ref");
  ASSERT_TRUE(SaveCheckpointRows(kRows, kDim, flat.data(), {}, ref_path).ok());
  const std::string ref_bytes = ReadFileBytes(ref_path);

  for (SnapshotQuantization q :
       {SnapshotQuantization::kNone, SnapshotQuantization::kInt8,
        SnapshotQuantization::kFp16}) {
    const std::string dir = TempPath(ToString(q));
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    SnapshotStoreOptions opts;
    opts.dir = dir;
    opts.quantization = q;
    SnapshotStore store(opts);
    ASSERT_TRUE(store.Publish(table, {}).ok());
    // The durable file is byte-identical to the seed fp32 format no
    // matter how the in-memory snapshot is encoded.
    EXPECT_EQ(ReadFileBytes(store.SnapshotPath(1)), ref_bytes)
        << "quantization=" << ToString(q);
    std::remove(store.SnapshotPath(1).c_str());
    ::rmdir(dir.c_str());
  }
  std::remove(ref_path.c_str());
}

TEST(QuantizedSnapshotTest, PublishFromCheckpointInterop) {
  constexpr int64_t kRows = 40;
  constexpr int kDim = 8;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 15);

  const std::string dir = TempPath("interop");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  SnapshotStoreOptions opts;
  opts.dir = dir;
  opts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore store(opts);
  ASSERT_TRUE(store.Publish(table, {}).ok());
  const std::string path = store.SnapshotPath(1);

  // An int8 store restoring the file re-encodes deterministically: reads
  // are bit-identical to the original publisher's.
  SnapshotStore restored_q(opts);
  ASSERT_TRUE(restored_q.PublishFromCheckpoint(path).ok());
  float a[kDim], b[kDim];
  for (int64_t x = 0; x < kRows; ++x) {
    store.Acquire()->ReadRow(x, a);
    restored_q.Acquire()->ReadRow(x, b);
    EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0) << "row " << x;
  }

  // A fp32 store restoring the same file serves the exact training rows:
  // quantizing the serving tier never degrades the durable copy.
  SnapshotStore restored_exact;
  ASSERT_TRUE(restored_exact.PublishFromCheckpoint(path).ok());
  for (int64_t x = 0; x < kRows; ++x) {
    restored_exact.Acquire()->ReadRow(x, a);
    EXPECT_EQ(std::memcmp(a, table.UnsafeRow(x), sizeof(a)), 0);
  }
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

// The remote-fetch fabric charge shrinks with the encoding.
TEST(QuantizedSnapshotTest, RemoteFetchChargesEncodedRowBytes) {
  constexpr int64_t kRows = 6;
  constexpr int kDim = 16;
  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  FillTableRandom(&table, 16);
  SnapshotStoreOptions opts;
  opts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore store(opts);
  ASSERT_TRUE(store.Publish(table, {}).ok());

  Partition partition;
  partition.num_parts = 2;
  partition.embedding_owner = {0, 0, 0, 1, 1, 1};
  partition.secondaries = {{}, {}};
  const Topology topology = Topology::ClusterA(2);
  Fabric fabric(topology);
  LookupServiceOptions lopts;
  lopts.request_bytes = 16;
  LookupService service(&store, partition, &fabric, lopts);

  float out[kDim];
  ASSERT_TRUE(service.Lookup(0, 4, out).ok());  // remote: shard 1 owns 4
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kLookup),
            16u + (static_cast<uint64_t>(kDim) + 2));
}

// ---------------------------------------------------- quantized hammer

// Seed hammer, int8 edition: readers continuously acquire and fully scan
// while the publisher republishes. Every snapshot is a constant fill of
// float(version), so any torn or mixed-version row shows up as either a
// non-constant row or a value outside the quantization error bound.
TEST(QuantizedSwapHammerTest, ConcurrentReadersAndQuantizedPublisher) {
  constexpr int kReaders = 8;
  constexpr int kReadsPerReader = 100;
  constexpr int64_t kRows = 64;
  constexpr int kDim = 8;

  EmbeddingTable table(kRows, kDim, 0.0f, 1);
  SnapshotStoreOptions opts;
  opts.quantization = SnapshotQuantization::kInt8;
  SnapshotStore store(opts);
  std::atomic<bool> readers_done{false};
  std::atomic<int64_t> inconsistencies{0};

  std::thread publisher([&] {
    uint64_t v = 0;
    while (!readers_done.load(std::memory_order_acquire)) {
      ++v;
      for (int64_t x = 0; x < kRows; ++x) {
        float* row = table.UnsafeMutableRow(x);
        for (int d = 0; d < kDim; ++d) row[d] = static_cast<float>(v);
      }
      ASSERT_TRUE(store.Publish(table, {}).ok());
    }
  });

  auto reader_main = [&] {
    int completed = 0;
    float row[kDim];
    while (completed < kReadsPerReader) {
      auto snap = store.Acquire();
      if (snap == nullptr) continue;
      const float expected = static_cast<float>(snap->meta().version);
      const float bound = expected / 250.0f;  // int8 round-trip ceiling
      for (int64_t x = 0; x < snap->rows(); ++x) {
        snap->ReadRow(x, row);
        for (int d = 0; d < kDim; ++d) {
          if (row[d] != row[0]) inconsistencies.fetch_add(1);
          if (std::fabs(row[d] - expected) > bound) {
            inconsistencies.fetch_add(1);
          }
        }
      }
      ++completed;
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) readers.emplace_back(reader_main);
  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  publisher.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(store.version(), 0u);
}

// ------------------------------------------------- admission control / QoS

// A controllable resolve function: the first dispatch parks on `gate`
// (holding the dispatcher inside Flush, outside the batcher lock) so the
// test can build up a pending backlog with exact key counts.
struct GatedService {
  std::atomic<bool> gate_open{false};
  std::atomic<int> calls{0};
  std::mutex order_mu;
  std::vector<int> shard_order;  // shard ids in dispatch order

  RequestBatcher::LookupFn Fn() {
    return [this](int shard, const FeatureId*, int64_t, float*) {
      {
        std::lock_guard<std::mutex> lock(order_mu);
        shard_order.push_back(shard);
      }
      calls.fetch_add(1);
      while (!gate_open.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return Status::OK();
    };
  }
};

TEST(BatcherQosTest, AdmissionShedsPastBudgetAndBestEffortFirst) {
  GatedService service;
  BatcherOptions opts;
  opts.max_batch_keys = 1;  // first request dispatches alone, immediately
  opts.deadline = std::chrono::seconds(30);
  opts.max_pending_keys = 4;
  opts.best_effort_admit_fraction = 0.5;  // best-effort budget: 2 keys
  RequestBatcher batcher(service.Fn(), opts);

  const FeatureId keys[4] = {0, 1, 2, 3};
  float out[4];

  // A: dispatched immediately, parks in the service holding the flush.
  std::thread a([&] {
    float a_out[1];
    EXPECT_TRUE(batcher.Lookup(0, keys, 1, a_out).ok());
  });
  while (service.calls.load() < 1) std::this_thread::yield();

  // B: 4 gold keys fill the entire admission budget.
  std::thread b([&] {
    float b_out[4];
    EXPECT_TRUE(batcher.Lookup(0, keys, 4, b_out).ok());
  });
  while (batcher.stats().requests < 2) std::this_thread::yield();

  // Queue full: gold sheds at the hard budget, best-effort at its lower
  // water mark — both fail fast (no blocking, we are on the main thread).
  EXPECT_EQ(batcher.Lookup(0, keys, 1, out).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.Lookup(0, keys, 1, out, TenantClass::kBestEffort).code(),
            StatusCode::kResourceExhausted);

  service.gate_open.store(true, std::memory_order_release);
  a.join();
  b.join();

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shed_gold, 1);
  EXPECT_EQ(stats.shed_best_effort, 1);
  EXPECT_EQ(stats.served_gold, 2);
  EXPECT_EQ(stats.served_best_effort, 0);
  EXPECT_EQ(stats.requests, 2);  // shed requests are not admitted
}

TEST(BatcherQosTest, BestEffortShedsWhileGoldStillAdmitted) {
  GatedService service;
  BatcherOptions opts;
  opts.max_batch_keys = 1;
  opts.deadline = std::chrono::seconds(30);
  opts.max_pending_keys = 8;
  opts.best_effort_admit_fraction = 0.25;  // best-effort budget: 2 keys
  RequestBatcher batcher(service.Fn(), opts);

  const FeatureId keys[4] = {0, 1, 2, 3};
  std::thread a([&] {
    float a_out[1];
    EXPECT_TRUE(batcher.Lookup(0, keys, 1, a_out).ok());
  });
  while (service.calls.load() < 1) std::this_thread::yield();
  std::thread b([&] {
    float b_out[4];
    EXPECT_TRUE(batcher.Lookup(0, keys, 4, b_out).ok());
  });
  while (batcher.stats().requests < 2) std::this_thread::yield();

  // Backlog of 4: past the best-effort water mark, within the gold one.
  float out[4];
  EXPECT_EQ(batcher.Lookup(0, keys, 1, out, TenantClass::kBestEffort).code(),
            StatusCode::kResourceExhausted);
  std::thread c([&] {
    float c_out[1];
    EXPECT_TRUE(batcher.Lookup(0, keys, 1, c_out).ok());  // gold: admitted
  });
  while (batcher.stats().requests < 3) std::this_thread::yield();

  service.gate_open.store(true, std::memory_order_release);
  a.join();
  b.join();
  c.join();

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shed_best_effort, 1);
  EXPECT_EQ(stats.shed_gold, 0);
  EXPECT_EQ(stats.served_gold, 3);
}

TEST(BatcherQosTest, WeightedDequeueServesGoldBeforeBestEffort) {
  GatedService service;
  BatcherOptions opts;
  opts.max_batch_keys = 2;  // backlog drains two keys per dispatch
  opts.deadline = std::chrono::seconds(30);
  RequestBatcher batcher(service.Fn(), opts);

  // Park the dispatcher on a first request (shard 9 marks it). Exactly
  // max_batch_keys wide, so it flushes immediately as a full batch
  // instead of waiting out the micro-batching window.
  const FeatureId key = 0;
  const FeatureId first_keys[2] = {0, 1};
  std::thread first([&] {
    float f_out[2];
    EXPECT_TRUE(batcher.Lookup(9, first_keys, 2, f_out).ok());
  });
  while (service.calls.load() < 1) std::this_thread::yield();

  // Queue best-effort before gold; the weighted dequeue must still serve
  // the gold pair first. Shard ids encode the class for the recorder.
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&] {
      float o[1];
      EXPECT_TRUE(
          batcher.Lookup(0, &key, 1, o, TenantClass::kBestEffort).ok());
    });
  }
  while (batcher.stats().requests < 3) std::this_thread::yield();
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&] {
      float o[1];
      EXPECT_TRUE(batcher.Lookup(1, &key, 1, o, TenantClass::kGold).ok());
    });
  }
  while (batcher.stats().requests < 5) std::this_thread::yield();

  service.gate_open.store(true, std::memory_order_release);
  first.join();
  for (auto& t : clients) t.join();

  std::lock_guard<std::mutex> lock(service.order_mu);
  ASSERT_EQ(service.shard_order.size(), 5u);
  EXPECT_EQ(service.shard_order[0], 9);  // the parked first request
  EXPECT_EQ(service.shard_order[1], 1);  // gold pair drains first...
  EXPECT_EQ(service.shard_order[2], 1);
  EXPECT_EQ(service.shard_order[3], 0);  // ...then the best-effort pair
  EXPECT_EQ(service.shard_order[4], 0);

  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.served_gold, 3);
  EXPECT_EQ(stats.served_best_effort, 2);
  EXPECT_GE(stats.dispatches, 3);  // capped batches, not one mega-flush
}

TEST(BatcherQosTest, UnboundedByDefaultNeverSheds) {
  GatedService service;
  service.gate_open.store(true);  // no parking needed
  RequestBatcher batcher(service.Fn());  // default options: no budget

  const FeatureId key = 0;
  float out[1];
  for (int i = 0; i < 16; ++i) {
    const TenantClass cls =
        (i % 2 == 0) ? TenantClass::kGold : TenantClass::kBestEffort;
    ASSERT_TRUE(batcher.Lookup(0, &key, 1, out, cls).ok());
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.shed_gold, 0);
  EXPECT_EQ(stats.shed_best_effort, 0);
  EXPECT_EQ(stats.served_gold + stats.served_best_effort, 16);
}

}  // namespace
}  // namespace hetgmp
