// Engine feature tests: LRU replica policy, SSP cache expiry, straggler
// injection, and write-back batching.

#include <gtest/gtest.h>

#include "comm/topology.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 77;
  return cfg;
}

struct Fixtures {
  Fixtures()
      : train(GenerateSyntheticCtr(TinyConfig())),
        test(train.SplitTail(0.2)),
        topology(Topology::FourGpuPcie()) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig BaseConfig(Strategy s) {
  EngineConfig cfg;
  cfg.strategy = s;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  return cfg;
}

// ---------------------------------------------------------- LRU policy

TEST(LruPolicyTest, TrainsAndReducesTrafficVersusNoCache) {
  Fixtures f;
  EngineConfig lru = BaseConfig(Strategy::kHetGmp);
  lru.replica_policy = ReplicaPolicy::kLruDynamic;
  lru.lru_capacity_fraction = 0.05;
  lru.bound.s = 100;
  EngineConfig none = BaseConfig(Strategy::kHetGmp);
  none.hybrid_options.secondary_fraction = 0.0;  // no replicas at all
  ExperimentResult rl = RunExperiment(lru, f.train, f.test, f.topology, 3);
  ExperimentResult rn = RunExperiment(none, f.train, f.test, f.topology, 3);
  EXPECT_GT(rl.train.final_auc, 0.62);
  // Dynamic caching absorbs repeat fetches of hot rows.
  EXPECT_LT(rl.train.rounds.back().embedding_bytes,
            rn.train.rounds.back().embedding_bytes);
}

TEST(LruPolicyTest, StaticVertexCutBeatsLruAtEqualCapacity) {
  // The design claim behind §5.2: graph-derived replication places
  // replicas by global co-access structure and should not lose to a
  // runtime LRU of the same capacity on traffic.
  Fixtures f;
  EngineConfig stat = BaseConfig(Strategy::kHetGmp);
  stat.hybrid_options.secondary_fraction = 0.05;
  stat.bound.s = 100;
  EngineConfig lru = stat;
  lru.replica_policy = ReplicaPolicy::kLruDynamic;
  lru.lru_capacity_fraction = 0.05;
  ExperimentResult rs = RunExperiment(stat, f.train, f.test, f.topology, 2);
  ExperimentResult rl = RunExperiment(lru, f.train, f.test, f.topology, 2);
  EXPECT_LE(rs.train.rounds.back().embedding_bytes,
            static_cast<uint64_t>(
                rl.train.rounds.back().embedding_bytes * 1.25));
}

TEST(LruPolicyTest, ZeroCapacityDegradesToNoCache) {
  Fixtures f;
  EngineConfig lru = BaseConfig(Strategy::kHetGmp);
  lru.replica_policy = ReplicaPolicy::kLruDynamic;
  lru.lru_capacity_fraction = 0.0;
  ExperimentResult r = RunExperiment(lru, f.train, f.test, f.topology, 1);
  EXPECT_GT(r.train.total_iterations, 0);
  EXPECT_GT(r.train.rounds.back().remote_fetches, 0);
}

// ---------------------------------------------------------------- DeepFM

TEST(DeepFmEngineTest, TrainsEndToEnd) {
  Fixtures f;
  EngineConfig cfg = BaseConfig(Strategy::kHetGmp);
  cfg.model = ModelType::kDeepFm;
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 3);
  EXPECT_GT(r.train.final_auc, 0.62);
  EXPECT_NE(r.description.find("DeepFM"), std::string::npos);
}

// ----------------------------------------------------------------- SSP

TEST(SspTest, CacheExpiryByIterationAge) {
  Fixtures f;
  EngineConfig ssp = BaseConfig(Strategy::kHetGmp);
  ssp.consistency = ConsistencyMode::kSsp;
  ssp.hybrid_options.secondary_fraction = 0.05;
  ssp.ssp_slack = 2;
  EngineConfig loose = ssp;
  loose.ssp_slack = 1000000;  // effectively never expires
  ExperimentResult rt = RunExperiment(ssp, f.train, f.test, f.topology, 2);
  ExperimentResult rl =
      RunExperiment(loose, f.train, f.test, f.topology, 2);
  // Tight slack forces periodic refreshes; loose slack none.
  EXPECT_GT(rt.train.rounds.back().intra_refreshes,
            rl.train.rounds.back().intra_refreshes);
  EXPECT_EQ(rl.train.rounds.back().intra_refreshes, 0);
}

// ------------------------------------------------------------ straggler

TEST(StragglerTest, BspPaysTheSlowWorkerEveryIteration) {
  Fixtures f;
  EngineConfig bsp = BaseConfig(Strategy::kHetMp);
  bsp.device_flops = 1e11;  // make compute matter
  EngineConfig slow_bsp = bsp;
  slow_bsp.worker_slowdown = {4.0, 1.0, 1.0, 1.0};
  EngineConfig bounded = BaseConfig(Strategy::kHetGmp);
  bounded.device_flops = 1e11;
  EngineConfig slow_bounded = bounded;
  slow_bounded.worker_slowdown = {4.0, 1.0, 1.0, 1.0};

  const double t_bsp =
      RunExperiment(bsp, f.train, f.test, f.topology, 1).train.compute_time;
  const double t_slow_bsp =
      RunExperiment(slow_bsp, f.train, f.test, f.topology, 1)
          .train.compute_time;
  // Average compute across workers grows by (4+1+1+1)/4 = 1.75x.
  EXPECT_GT(t_slow_bsp, t_bsp * 1.5);

  // End-to-end (max) time: BSP serializes on the straggler while the
  // bounded mode only syncs at round boundaries — both see the straggler
  // in max time, but BSP should see at least as much inflation.
  const double e_bsp =
      RunExperiment(slow_bsp, f.train, f.test, f.topology, 1)
          .train.total_sim_time;
  const double e_bounded =
      RunExperiment(slow_bounded, f.train, f.test, f.topology, 1)
          .train.total_sim_time;
  EXPECT_GT(e_bsp, 0.0);
  EXPECT_GT(e_bounded, 0.0);
}

TEST(StragglerTest, CapacityAwareBalancingShedsLoad) {
  // §3: the heterogeneity-aware balancer gives the slow device smaller
  // batches (and proportionally fewer samples), so throughput degrades by
  // the lost compute share rather than by the slowdown factor.
  Fixtures f;
  EngineConfig uniform = BaseConfig(Strategy::kHetGmp);
  // Compute-dominated regime with a heavy straggler so the balancing
  // effect is unambiguous.
  uniform.batch_size = 512;
  uniform.embedding_dim = 16;
  uniform.device_flops = 1e11;
  uniform.worker_slowdown = {8.0, 1.0, 1.0, 1.0};
  EngineConfig aware = uniform;
  aware.balance_batch_to_capacity = true;
  const double t_uniform =
      RunExperiment(uniform, f.train, f.test, f.topology, 1)
          .train.Throughput();
  const double t_aware =
      RunExperiment(aware, f.train, f.test, f.topology, 1)
          .train.Throughput();
  EXPECT_GT(t_aware, t_uniform * 1.5);
}

TEST(StragglerTest, NoSlowdownVectorIsNeutral) {
  Fixtures f;
  EngineConfig a = BaseConfig(Strategy::kHetMp);
  EngineConfig b = a;
  b.worker_slowdown = {1.0, 1.0, 1.0, 1.0};
  const double ta =
      RunExperiment(a, f.train, f.test, f.topology, 1).train.compute_time;
  const double tb =
      RunExperiment(b, f.train, f.test, f.topology, 1).train.compute_time;
  EXPECT_NEAR(ta, tb, ta * 0.01);
}

// -------------------------------------------------------- epoch budget

// Locks in the nominal-epoch contract documented at
// EngineConfig::batch_size: one epoch is
// ceil(num_samples / (num_workers * batch_size)) iterations per worker —
// the iteration budget of a global pass at the *configured* batch size —
// and capacity-aware balancing changes per-iteration work, never the
// iteration count (all workers must agree on the round schedule).
TEST(EpochSemanticsTest, IterationBudgetIsNominalGlobalPass) {
  Fixtures f;  // 3000 train samples → 2400 after the 0.2 test split
  EngineConfig cfg = BaseConfig(Strategy::kHetGmp);
  cfg.deterministic = true;  // schedule-stable iteration counts
  const int N = f.topology.num_workers();
  const int64_t train_samples = f.train.num_samples();
  // ceil(2400 / (4 * 64)) = 10 iterations per worker per epoch; 2 rounds
  // of 5 each.
  const int64_t iters_per_epoch =
      (train_samples + static_cast<int64_t>(N) * cfg.batch_size - 1) /
      (static_cast<int64_t>(N) * cfg.batch_size);
  const int64_t iters_per_round =
      (iters_per_epoch + cfg.rounds_per_epoch - 1) / cfg.rounds_per_epoch;
  const int64_t expected_total =
      static_cast<int64_t>(N) * cfg.rounds_per_epoch * iters_per_round;

  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 1);
  EXPECT_EQ(r.train.total_iterations, expected_total);
  EXPECT_EQ(r.train.samples_processed,
            expected_total * cfg.batch_size);

  // Capacity balancing shrinks slow workers' batches but must not change
  // the iteration budget: same schedule, less work per slow iteration.
  EngineConfig aware = cfg;
  aware.balance_batch_to_capacity = true;
  aware.worker_slowdown = {4.0, 2.0, 1.0, 1.0};
  ExperimentResult ra = RunExperiment(aware, f.train, f.test, f.topology, 1);
  EXPECT_EQ(ra.train.total_iterations, expected_total);
  // Per-worker batches: 64/4=16, 64/2=32, 64, 64 → 176 samples per global
  // iteration instead of 256.
  const int64_t per_iter_samples = 16 + 32 + 64 + 64;
  EXPECT_EQ(ra.train.samples_processed,
            cfg.rounds_per_epoch * iters_per_round * per_iter_samples);
  EXPECT_LT(ra.train.samples_processed, r.train.samples_processed);
}

// ----------------------------------------------------- write-back batch

TEST(WriteBackBatchingTest, ReducesTrafficKeepsQuality) {
  Fixtures f;
  EngineConfig every = BaseConfig(Strategy::kHetGmp);
  every.hybrid_options.secondary_fraction = 0.05;
  every.bound.s = 100;
  every.write_back_every = 1;
  EngineConfig batched = every;
  batched.write_back_every = 4;
  ExperimentResult re =
      RunExperiment(every, f.train, f.test, f.topology, 3);
  ExperimentResult rb =
      RunExperiment(batched, f.train, f.test, f.topology, 3);
  EXPECT_LT(rb.train.rounds.back().embedding_bytes,
            re.train.rounds.back().embedding_bytes);
  EXPECT_NEAR(rb.train.final_auc, re.train.final_auc, 0.03);
}

class WriteBackSweep : public ::testing::TestWithParam<int> {};

TEST_P(WriteBackSweep, RunsCleanlyAndInvariantsHold) {
  Fixtures f;
  EngineConfig cfg = BaseConfig(Strategy::kHetGmp);
  cfg.hybrid_options.secondary_fraction = 0.03;
  cfg.write_back_every = GetParam();
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  TrainResult r = engine.Train(1);
  EXPECT_GT(r.total_iterations, 0);
  EXPECT_GT(r.final_auc, 0.5);
  const Status st = engine.ValidateInvariants();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(InvariantTest, HoldsAcrossStrategiesAndPolicies) {
  Fixtures f;
  for (Strategy s : {Strategy::kHugeCtr, Strategy::kHetGmp,
                     Strategy::kParallax}) {
    for (bool lru : {false, true}) {
      EngineConfig cfg = BaseConfig(s);
      if (lru) {
        cfg.replica_policy = ReplicaPolicy::kLruDynamic;
        cfg.lru_capacity_fraction = 0.05;
      }
      Bigraph graph(f.train);
      Partition part = BuildPartition(cfg, graph, f.topology);
      Engine engine(cfg, f.train, f.test, f.topology, part);
      engine.Train(1);
      const Status st = engine.ValidateInvariants();
      EXPECT_TRUE(st.ok())
          << StrategyName(s) << " lru=" << lru << ": " << st.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, WriteBackSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace hetgmp
