// Boundary conditions: degenerate sizes, extreme configurations, and the
// non-CTR workload shape from §2 (knowledge-graph-style samples that
// touch only two embeddings).

#include <gtest/gtest.h>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"

namespace hetgmp {
namespace {

TEST(EdgeCaseTest, KnowledgeGraphStyleAritalTwoWorkload) {
  // §2: "in knowledge graph embeddings, a data sample only needs to
  // access two embeddings for an edge". The bigraph abstraction and the
  // whole pipeline must handle arity-2 samples.
  SyntheticCtrConfig cfg;
  cfg.name = "kg-like";
  cfg.num_samples = 4000;
  cfg.num_fields = 2;  // head entity, tail entity
  cfg.num_features = 500;
  cfg.num_clusters = 4;
  cfg.seed = 5;
  CtrDataset train = GenerateSyntheticCtr(cfg);
  CtrDataset test = train.SplitTail(0.2);
  EXPECT_EQ(Bigraph(train).arity(), 2);

  EngineConfig ec;
  ec.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&ec);
  ec.batch_size = 64;
  ec.embedding_dim = 8;
  ExperimentResult r = RunExperiment(ec, train, test,
                                     Topology::FourGpuPcie(), 3);
  EXPECT_GT(r.train.final_auc, 0.55);
}

TEST(EdgeCaseTest, BatchLargerThanLocalSamples) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 100;  // far fewer than workers × batch
  cfg.num_fields = 4;
  cfg.num_features = 60;
  cfg.num_clusters = 2;
  cfg.seed = 6;
  CtrDataset train = GenerateSyntheticCtr(cfg);
  CtrDataset test = train.SplitTail(0.2);
  EngineConfig ec;
  ec.strategy = Strategy::kHetMp;
  ApplyStrategyDefaults(&ec);
  ec.batch_size = 256;  // cyclic oversampling of local data
  ec.embedding_dim = 4;
  ExperimentResult r = RunExperiment(ec, train, test,
                                     Topology::FourGpuNvlink(), 1);
  EXPECT_GT(r.train.total_iterations, 0);
}

TEST(EdgeCaseTest, MoreRoundsThanIterations) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 300;
  cfg.num_fields = 4;
  cfg.num_features = 80;
  cfg.num_clusters = 2;
  cfg.seed = 7;
  CtrDataset train = GenerateSyntheticCtr(cfg);
  CtrDataset test = train.SplitTail(0.2);
  EngineConfig ec;
  ec.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&ec);
  ec.batch_size = 64;
  ec.embedding_dim = 4;
  ec.rounds_per_epoch = 64;  // >> iters/epoch; engine must clamp to ≥1
  ExperimentResult r = RunExperiment(ec, train, test,
                                     Topology::FourGpuNvlink(), 1);
  EXPECT_GT(r.train.total_iterations, 0);
}

TEST(EdgeCaseTest, SingleFieldDataset) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 1000;
  cfg.num_fields = 1;
  cfg.num_features = 64;
  cfg.num_clusters = 2;
  cfg.seed = 8;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  Bigraph g(d);
  EXPECT_EQ(g.arity(), 1);
  // Partitioning a 1-field graph is trivial but must stay valid.
  HybridPartitionerOptions opt;
  opt.rounds = 1;
  Partition p = HybridPartitioner(opt).Run(g, 2);
  const PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_EQ(q.total_accesses, 1000);
}

TEST(EdgeCaseTest, MoreWorkersThanClusters) {
  // 24 workers over a dataset with 4 latent clusters: partitioner must
  // still balance and beat random.
  SyntheticCtrConfig cfg;
  cfg.num_samples = 4800;
  cfg.num_fields = 6;
  cfg.num_features = 1200;
  cfg.num_clusters = 4;
  cfg.seed = 9;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  Bigraph g(d);
  HybridPartitionerOptions opt;
  opt.rounds = 2;
  Partition p = HybridPartitioner(opt).Run(g, 24);
  const PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_LT(q.RemoteFraction(), 23.0 / 24.0);
  EXPECT_GT(q.min_samples, 0);
}

TEST(EdgeCaseTest, SplitTailTinyFraction) {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 50;
  cfg.num_fields = 3;
  cfg.num_features = 30;
  cfg.num_clusters = 2;
  cfg.seed = 10;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  CtrDataset t = d.SplitTail(0.001);  // rounds up to at least 1 sample
  EXPECT_GE(t.num_samples(), 1);
  EXPECT_EQ(d.num_samples() + t.num_samples(), 50);
}

}  // namespace
}  // namespace hetgmp
