// Tiered embedding storage (ISSUE 7): cold-tier file format, hot/warm/
// cold migrations, the prefetch pipeline, and — the load-bearing claim —
// bit-identical training trajectories with the hierarchy on vs the
// fully-resident arena.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "store/cold_tier.h"
#include "store/prefetch.h"
#include "store/tiered_store.h"

namespace hetgmp {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/hetgmp_store_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<float> Ramp(int n, float base) {
  std::vector<float> v(n);
  for (int i = 0; i < n; ++i) v[i] = base + 0.25f * static_cast<float>(i);
  return v;
}

// ----------------------------------------------------- cold tier format

TEST(ColdTierTest, RoundTripThroughReopen) {
  const std::string path = TempPath("roundtrip");
  constexpr int kDim = 6;
  {
    auto created = ColdTierFile::Create(path, /*capacity=*/8, kDim);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ColdTierFile& f = *created.value();
    EXPECT_EQ(f.capacity(), 8);
    EXPECT_EQ(f.dim(), kDim);
    EXPECT_EQ(f.rows_used(), 0);
    for (FeatureId x : {41, 7, 19}) {
      const std::vector<float> value = Ramp(kDim, static_cast<float>(x));
      const std::vector<float> accum = Ramp(kDim, -static_cast<float>(x));
      const int64_t row = f.Append(x, value.data(), accum.data());
      EXPECT_EQ(f.IdAt(row), x);
    }
    EXPECT_EQ(f.rows_used(), 3);
    // In-place overwrite of an existing record (re-demotion path).
    const std::vector<float> v2 = Ramp(kDim, 100.0f);
    f.WriteRow(1, v2.data(), nullptr);
  }
  auto opened = ColdTierFile::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ColdTierFile& f = *opened.value();
  EXPECT_EQ(f.capacity(), 8);
  EXPECT_EQ(f.dim(), kDim);
  EXPECT_EQ(f.rows_used(), 3);
  EXPECT_EQ(f.IdAt(0), 41);
  EXPECT_EQ(f.IdAt(1), 7);
  EXPECT_EQ(f.IdAt(2), 19);
  std::vector<float> value(kDim), accum(kDim);
  f.ReadRow(0, value.data(), accum.data());
  EXPECT_EQ(value, Ramp(kDim, 41.0f));
  EXPECT_EQ(accum, Ramp(kDim, -41.0f));
  f.ReadRow(1, value.data(), /*accum=*/nullptr);  // null dest skips accum
  EXPECT_EQ(value, Ramp(kDim, 100.0f));
  f.ReadRow(2, value.data(), accum.data());
  EXPECT_EQ(accum, Ramp(kDim, -19.0f));
  EXPECT_GT(f.reads(), 0);
  std::remove(path.c_str());
}

TEST(ColdTierTest, TruncatedFileRejected) {
  const std::string path = TempPath("truncated");
  {
    auto created = ColdTierFile::Create(path, 4, 3);
    ASSERT_TRUE(created.ok());
    const std::vector<float> v = Ramp(3, 1.0f);
    created.value()->Append(5, v.data(), v.data());
  }
  ASSERT_EQ(::truncate(path.c_str(), 40), 0);  // chop mid-directory
  auto opened = ColdTierFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ColdTierTest, CorruptFooterRejected) {
  const std::string path = TempPath("footer");
  {
    auto created = ColdTierFile::Create(path, 4, 3);
    ASSERT_TRUE(created.ok());
  }
  {
    // Overwrite the last byte of the "HGMPEND2" footer sentinel.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  auto opened = ColdTierFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ColdTierTest, WrongMagicRejected) {
  const std::string path = TempPath("magic");
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a cold tier file, padded to header length......";
  }
  auto opened = ColdTierFile::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ColdTierTest, MissingFileIsNotFound) {
  auto opened = ColdTierFile::Open("/nonexistent/dir/cold.bin");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST(ColdTierDeathTest, OutOfRangeRowChecks) {
  const std::string path = TempPath("death");
  auto created = ColdTierFile::Create(path, 4, 3);
  ASSERT_TRUE(created.ok());
  ColdTierFile& f = *created.value();
  f.Unlink();
  std::vector<float> buf(3);
  EXPECT_DEATH(f.ReadRow(0, buf.data(), nullptr), "Check failed");
  const std::vector<float> v = Ramp(3, 1.0f);
  f.Append(9, v.data(), v.data());
  EXPECT_DEATH(f.ReadRow(-1, buf.data(), nullptr), "Check failed");
  EXPECT_DEATH(f.ReadRow(1, buf.data(), nullptr), "Check failed");
}

// --------------------------------------------------- tiered store moves

struct StoreFixture {
  static constexpr int64_t kRows = 64;
  static constexpr int kDim = 4;

  StoreFixture(int64_t hot, int64_t warm, int stripes = 1)
      : table(kRows, kDim, /*init_stddev=*/0.1f, /*seed=*/7) {
    // Descending frequency: feature 0 hottest, so initial placement is
    // [0, hot) hot, [hot, hot+warm) warm, rest cold.
    std::vector<double> freq(kRows);
    for (int64_t x = 0; x < kRows; ++x) {
      freq[static_cast<size_t>(x)] = static_cast<double>(kRows - x);
    }
    TieredStoreOptions opts;
    opts.hot_rows = hot;
    opts.warm_rows = warm;
    opts.stripes = stripes;
    auto r = TieredEmbeddingStore::Create(&table, freq, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    store = std::move(r.value());
  }

  EmbeddingTable table;
  std::unique_ptr<TieredEmbeddingStore> store;
};

TEST(TieredStoreTest, InitialPlacementFollowsFrequency) {
  StoreFixture fx(/*hot=*/8, /*warm=*/16);
  EXPECT_EQ(fx.store->ResidentRows(), 8);
  EXPECT_EQ(fx.store->WarmRows(), 16);
  EXPECT_EQ(fx.store->StateOf(0), TierState::kHot);
  EXPECT_EQ(fx.store->StateOf(7), TierState::kHot);
  EXPECT_EQ(fx.store->StateOf(8), TierState::kWarm);
  EXPECT_EQ(fx.store->StateOf(23), TierState::kWarm);
  EXPECT_EQ(fx.store->StateOf(24), TierState::kCold);
  EXPECT_EQ(fx.store->StateOf(StoreFixture::kRows - 1), TierState::kCold);
}

TEST(TieredStoreTest, MigrationPreservesValueAndAccumBytes) {
  StoreFixture fx(/*hot=*/4, /*warm=*/8);
  EmbeddingTable& t = fx.table;
  TieredEmbeddingStore& s = *fx.store;
  constexpr int kDim = StoreFixture::kDim;

  // Capture every row's initial bytes (all rows start valid in the
  // arena before Create() demotes the tail).
  std::vector<std::vector<float>> want(StoreFixture::kRows);
  for (int64_t x = 0; x < StoreFixture::kRows; ++x) {
    want[static_cast<size_t>(x)] = Ramp(kDim, static_cast<float>(x) * 3.0f);
    // Give each row distinctive value AND accum bytes via a pinned write.
    s.Pin(x);
    std::copy(want[static_cast<size_t>(x)].begin(),
              want[static_cast<size_t>(x)].end(), t.UnsafeMutableRow(x));
    float* accum = t.UnsafeMutableAccumRow(x);
    for (int d = 0; d < kDim; ++d) {
      accum[d] = 1000.0f + static_cast<float>(x) + 0.5f * d;
    }
    s.Unpin(x);
  }

  // Churn: repeatedly fault cold-tail rows hot (evicting earlier ones
  // through warm down to cold) for several passes, so every row makes
  // multiple hot->warm->cold->hot trips.
  for (int pass = 0; pass < 3; ++pass) {
    for (int64_t x = StoreFixture::kRows - 1; x >= 0; --x) {
      s.Pin(x);
      EXPECT_EQ(s.StateOf(x), TierState::kHot);
      const float* row = t.UnsafeRow(x);
      for (int d = 0; d < kDim; ++d) {
        ASSERT_EQ(row[d], want[static_cast<size_t>(x)][d])
            << "value x=" << x << " d=" << d << " pass=" << pass;
      }
      const float* accum = t.UnsafeAccumRow(x);
      for (int d = 0; d < kDim; ++d) {
        ASSERT_EQ(accum[d], 1000.0f + static_cast<float>(x) + 0.5f * d)
            << "accum x=" << x << " d=" << d << " pass=" << pass;
      }
      s.Unpin(x);
    }
  }

  // PeekRow sees the same bytes without changing residency.
  std::vector<float> peeked(kDim);
  for (int64_t x = 0; x < StoreFixture::kRows; ++x) {
    const TierState before = s.StateOf(x);
    s.PeekRow(x, peeked.data());
    EXPECT_EQ(peeked, want[static_cast<size_t>(x)]) << "peek x=" << x;
    EXPECT_EQ(s.StateOf(x), before) << "peek moved x=" << x;
  }

  const TieredStoreStats st = s.Stats();
  EXPECT_GT(st.cold.writebacks, 0);  // spills happened
  EXPECT_GT(st.cold.hits, 0);        // and were read back
  EXPECT_GT(st.warm.promotions, 0);
  EXPECT_GT(st.warm.demotions, 0);
  EXPECT_LE(s.ResidentRows(), 4 + st.hot_overflow);
}

TEST(TieredStoreTest, PinnedRowsAreNotDemotable) {
  StoreFixture fx(/*hot=*/4, /*warm=*/8);
  TieredEmbeddingStore& s = *fx.store;
  // Pin the whole hot set, then fault more rows in: the store must
  // overflow (run temporarily oversized) rather than evict a pinned row.
  for (FeatureId x : {0, 1, 2, 3}) s.Pin(x);
  s.Pin(40);
  s.Pin(41);
  for (FeatureId x : {0, 1, 2, 3, 40, 41}) {
    EXPECT_EQ(s.StateOf(x), TierState::kHot) << x;
  }
  EXPECT_EQ(s.Stats().hot_overflow, 2);
  for (FeatureId x : {0, 1, 2, 3, 40, 41}) s.Unpin(x);
}

TEST(TieredStoreTest, PrefetchNeverOverrunsHotBudget) {
  StoreFixture fx(/*hot=*/4, /*warm=*/8);
  TieredEmbeddingStore& s = *fx.store;
  // Pin the full hot budget so prefetch has no victim: cold rows must
  // settle in warm, never push the hot tier over budget.
  for (FeatureId x : {0, 1, 2, 3}) s.Pin(x);
  s.Prefetch(50);
  s.Prefetch(51);
  EXPECT_EQ(s.ResidentRows(), 4);
  EXPECT_NE(s.StateOf(50), TierState::kCold);
  EXPECT_NE(s.StateOf(51), TierState::kCold);
  for (FeatureId x : {0, 1, 2, 3}) s.Unpin(x);
  // With pins released, prefetch promotes all the way to hot.
  s.Prefetch(52);
  EXPECT_EQ(s.StateOf(52), TierState::kHot);
  EXPECT_LE(s.ResidentRows(), 4);
}

TEST(TieredStoreTest, ConcurrentPromoteDemoteHammer) {
  StoreFixture fx(/*hot=*/8, /*warm=*/16, /*stripes=*/4);
  TieredEmbeddingStore& s = *fx.store;
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t, &failed] {
      std::vector<float> buf(StoreFixture::kDim);
      uint64_t rng = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        const FeatureId x =
            static_cast<FeatureId>((rng >> 33) % StoreFixture::kRows);
        switch ((rng >> 29) & 3) {
          case 0: {
            s.Pin(x);
            if (s.StateOf(x) != TierState::kHot) failed.store(true);
            s.Unpin(x);
            break;
          }
          case 1: {
            const FeatureId pair[2] = {
                x, static_cast<FeatureId>((x + 11) % StoreFixture::kRows)};
            s.PinBatch(pair, 2);
            s.UnpinBatch(pair, 2);
            break;
          }
          case 2:
            s.Prefetch(x);
            break;
          default:
            if ((rng >> 27) & 1) {
              s.PeekRow(x, buf.data());
            } else {
              s.ReadRow(x, buf.data());
            }
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  const TieredStoreStats st = s.Stats();
  // Batch pins count toward coverage; bare Pin/ReadRow pins only hit the
  // per-tier counters, so hits+misses bounds pin_requests from above.
  EXPECT_GT(st.pin_requests, 0);
  EXPECT_GE(st.hot.hits + st.hot.misses, st.pin_requests);
  EXPECT_LE(s.ResidentRows(), 8 + st.hot_overflow);
}

TEST(PrefetchPipelineTest, SubmitsResolveOffThread) {
  StoreFixture fx(/*hot=*/8, /*warm=*/16);
  {
    PrefetchPipeline pipe(fx.store.get(), /*num_workers=*/2);
    const std::vector<FeatureId> batch0 = {60, 61, 62};
    const std::vector<FeatureId> batch1 = {50, 51};
    pipe.Submit(0, batch0.data(), static_cast<int64_t>(batch0.size()));
    pipe.Submit(1, batch1.data(), static_cast<int64_t>(batch1.size()));
    pipe.Quiesce();
    EXPECT_EQ(pipe.stats().batches, 2);
  }
  // Quiesce drained both batches: every submitted feature left cold.
  for (FeatureId x : {60, 61, 62, 50, 51}) {
    EXPECT_NE(fx.store->StateOf(x), TierState::kCold) << x;
  }
  const TieredStoreStats st = fx.store->Stats();
  EXPECT_GE(st.prefetch_features, 5);
}

// ------------------------------------------------- engine integration

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 91;
  return cfg;
}

struct Fixtures {
  Fixtures()
      : train(GenerateSyntheticCtr(TinyConfig())),
        test(train.SplitTail(0.2)),
        topology(Topology::FourGpuPcie()) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  cfg.bound.s = 1;
  return cfg;
}

TrainResult RunOnce(EngineConfig cfg, const Fixtures& f, int epochs = 1) {
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  return engine.Train(epochs);
}

// The tentpole invariant: under the deterministic driver, training with
// the hierarchy on (rows constantly migrating hot<->warm<->cold) must
// reproduce the fully-resident trajectory bit for bit.
TEST(TieredEngineTest, DeterministicTrajectoryMatchesResidentExactly) {
  Fixtures f;
  EngineConfig cfg = BaseConfig();
  cfg.deterministic = true;

  const TrainResult resident = RunOnce(cfg, f);

  EngineConfig tiered_cfg = cfg;
  tiered_cfg.tiered_store.enabled = true;
  // Tiny budgets force heavy migration; prefetch off keeps the
  // deterministic driver single-threaded end to end.
  tiered_cfg.tiered_store.hot_rows = 60;
  tiered_cfg.tiered_store.warm_rows = 120;
  tiered_cfg.tiered_store.prefetch = false;
  const TrainResult tiered = RunOnce(tiered_cfg, f);

  ASSERT_EQ(resident.rounds.size(), tiered.rounds.size());
  for (size_t i = 0; i < resident.rounds.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    const RoundStats& a = resident.rounds[i];
    const RoundStats& b = tiered.rounds[i];
    EXPECT_EQ(a.iterations_done, b.iterations_done);
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.auc, b.auc);
    EXPECT_EQ(a.sim_time, b.sim_time);
    EXPECT_EQ(a.embedding_bytes, b.embedding_bytes);
    EXPECT_EQ(a.remote_fetches, b.remote_fetches);
    EXPECT_EQ(a.inter_refreshes, b.inter_refreshes);
    EXPECT_EQ(a.inter_flags, b.inter_flags);
  }
  EXPECT_EQ(resident.final_auc, tiered.final_auc);
  EXPECT_EQ(resident.total_sim_time, tiered.total_sim_time);
  EXPECT_EQ(resident.samples_processed, tiered.samples_processed);

  EXPECT_TRUE(tiered.tiered);
  EXPECT_FALSE(resident.tiered);
  EXPECT_GT(tiered.tiers.cold.writebacks, 0);  // the table really spilled
}

TEST(TieredEngineTest, ThreadedTieredSmokeWithPrefetch) {
  Fixtures f;
  EngineConfig cfg = BaseConfig();
  cfg.tiered_store.enabled = true;
  cfg.tiered_store.hot_rows = 60;
  cfg.tiered_store.warm_rows = 120;
  cfg.tiered_store.prefetch = true;

  const TrainResult r = RunOnce(cfg, f);
  ASSERT_TRUE(r.tiered);
  const TieredStoreStats& t = r.tiers;
  EXPECT_GT(t.pin_requests, 0);
  // Out-of-batch pins (LRU flushes, refreshes) hit the tier counters
  // without counting as batch pin requests.
  EXPECT_GE(t.hot.hits + t.hot.misses, t.pin_requests);
  EXPECT_GE(t.PinCoverage(), 0.0);
  EXPECT_LE(t.PinCoverage(), 1.0);
  EXPECT_GT(t.prefetch_batches, 0);
  EXPECT_GE(t.prefetch_features, t.prefetch_promoted);
  EXPECT_GE(t.stall_secs, 0.0);
  EXPECT_GT(r.final_auc, 0.5);  // it actually learned something
}

// Satellite 1: LruEmbeddingCache counters surface in TrainResult.
TEST(TieredEngineTest, LruCacheCountersSurfaceInTrainResult) {
  Fixtures f;
  EngineConfig cfg = BaseConfig();
  cfg.replica_policy = ReplicaPolicy::kLruDynamic;
  cfg.lru_capacity_fraction = 0.05;
  cfg.deterministic = true;

  const TrainResult r = RunOnce(cfg, f);
  EXPECT_GT(r.replica_cache.lookups(), 0);
  EXPECT_GT(r.replica_cache.hits, 0);
  EXPECT_GE(r.replica_cache.HitRate(), 0.0);
  EXPECT_LE(r.replica_cache.HitRate(), 1.0);
}

}  // namespace
}  // namespace hetgmp
