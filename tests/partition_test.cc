#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"
#include "partition/random_partitioner.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig TestConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 4000;
  cfg.num_fields = 10;
  cfg.num_features = 1200;
  cfg.num_clusters = 8;
  cfg.seed = 21;
  return cfg;
}

class PartitionFixture : public ::testing::Test {
 protected:
  PartitionFixture()
      : dataset_(GenerateSyntheticCtr(TestConfig())), graph_(dataset_) {}

  CtrDataset dataset_;
  Bigraph graph_;
};

void ExpectValidPartition(const Partition& p, const Bigraph& g, int n) {
  EXPECT_EQ(p.num_parts, n);
  EXPECT_EQ(p.num_samples(), g.num_samples());
  EXPECT_EQ(p.num_embeddings(), g.num_embeddings());
  for (int o : p.sample_owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, n);
  }
  for (int o : p.embedding_owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, n);
  }
  ASSERT_EQ(static_cast<int>(p.secondaries.size()), n);
  for (int w = 0; w < n; ++w) {
    std::set<FeatureId> seen;
    for (FeatureId x : p.secondaries[w]) {
      EXPECT_NE(p.embedding_owner[x], w)
          << "secondary duplicates local primary";
      EXPECT_TRUE(seen.insert(x).second) << "duplicate secondary";
    }
  }
}

// ---------------------------------------------------------------- Random

TEST_F(PartitionFixture, RandomIsValidAndBalanced) {
  Partition p = RandomPartitioner().Run(graph_, 8);
  ExpectValidPartition(p, graph_, 8);
  PartitionQuality q = EvaluatePartition(graph_, p);
  // Round-robin samples: near-perfect balance.
  EXPECT_LE(q.max_samples - q.min_samples, 1);
  // Random placement: remote fraction near (N-1)/N.
  EXPECT_NEAR(q.RemoteFraction(), 7.0 / 8.0, 0.02);
  EXPECT_DOUBLE_EQ(p.ReplicationFactor(), 1.0);
}

TEST_F(PartitionFixture, RandomDeterministicForSeed) {
  Partition a = RandomPartitioner(5).Run(graph_, 4);
  Partition b = RandomPartitioner(5).Run(graph_, 4);
  EXPECT_EQ(a.sample_owner, b.sample_owner);
  EXPECT_EQ(a.embedding_owner, b.embedding_owner);
}

// ----------------------------------------------------------------- BiCut

TEST_F(PartitionFixture, BiCutBeatsRandomOnLocality) {
  Partition random = RandomPartitioner().Run(graph_, 8);
  Partition bicut = BiCutPartitioner().Run(graph_, 8);
  ExpectValidPartition(bicut, graph_, 8);
  const auto qr = EvaluatePartition(graph_, random);
  const auto qb = EvaluatePartition(graph_, bicut);
  // Table 3: BiCut reduces communication over random, but modestly
  // (paper: 13.5–18.7%).
  EXPECT_LT(qb.remote_accesses, qr.remote_accesses);
  const double reduction =
      1.0 - static_cast<double>(qb.remote_accesses) / qr.remote_accesses;
  EXPECT_GT(reduction, 0.05);
  EXPECT_LT(reduction, 0.5);
}

TEST_F(PartitionFixture, BiCutRespectsLoadCap) {
  BiCutPartitioner bicut(/*max_imbalance=*/0.05);
  Partition p = bicut.Run(graph_, 8);
  PartitionQuality q = EvaluatePartition(graph_, p);
  const double cap = 1.05 * graph_.num_samples() / 8.0 + 1;
  EXPECT_LE(q.max_samples, static_cast<int64_t>(cap) + 1);
}

// ---------------------------------------------------------------- Hybrid

TEST_F(PartitionFixture, HybridBeatsBiCutAndRandom) {
  Partition random = RandomPartitioner().Run(graph_, 8);
  Partition bicut = BiCutPartitioner().Run(graph_, 8);
  HybridPartitionerOptions opt;
  opt.rounds = 3;
  Partition hybrid = HybridPartitioner(opt).Run(graph_, 8);
  ExpectValidPartition(hybrid, graph_, 8);
  const auto qr = EvaluatePartition(graph_, random);
  const auto qb = EvaluatePartition(graph_, bicut);
  const auto qh = EvaluatePartition(graph_, hybrid);
  // Table 3 ordering: ours ≪ BiCut < random.
  EXPECT_LT(qh.remote_accesses, qb.remote_accesses);
  EXPECT_LT(qb.remote_accesses, qr.remote_accesses);
  const double reduction =
      1.0 - static_cast<double>(qh.remote_accesses) / qr.remote_accesses;
  EXPECT_GT(reduction, 0.35);  // paper: 37.3%+ after one round
}

TEST_F(PartitionFixture, MoreRoundsDoNotHurt) {
  auto remote_at = [&](int rounds) {
    HybridPartitionerOptions opt;
    opt.rounds = rounds;
    opt.secondary_fraction = 0.0;
    Partition p = HybridPartitioner(opt).Run(graph_, 8);
    return EvaluatePartition(graph_, p).remote_accesses;
  };
  const int64_t r1 = remote_at(1);
  const int64_t r3 = remote_at(3);
  const int64_t r5 = remote_at(5);
  // Iteration refines (allowing small non-monotone jitter ≤ 10%).
  EXPECT_LE(r3, r1 * 1.1);
  EXPECT_LE(r5, r3 * 1.1);
  EXPECT_LT(r5, r1);
}

TEST_F(PartitionFixture, SecondaryBudgetRespected) {
  HybridPartitionerOptions opt;
  opt.secondary_fraction = 0.02;
  Partition p = HybridPartitioner(opt).Run(graph_, 8);
  const int64_t budget =
      static_cast<int64_t>(0.02 * graph_.num_embeddings());
  for (const auto& s : p.secondaries) {
    EXPECT_LE(static_cast<int64_t>(s.size()), budget);
  }
}

TEST_F(PartitionFixture, ZeroSecondaryFractionDisablesReplication) {
  HybridPartitionerOptions opt;
  opt.secondary_fraction = 0.0;
  Partition p = HybridPartitioner(opt).Run(graph_, 8);
  EXPECT_EQ(p.TotalSecondaries(), 0);
  EXPECT_DOUBLE_EQ(p.ReplicationFactor(), 1.0);
}

TEST_F(PartitionFixture, ReplicationReducesRemoteAccesses) {
  HybridPartitionerOptions none;
  none.secondary_fraction = 0.0;
  HybridPartitionerOptions some;
  some.secondary_fraction = 0.02;
  const auto qn =
      EvaluatePartition(graph_, HybridPartitioner(none).Run(graph_, 8));
  const auto qs =
      EvaluatePartition(graph_, HybridPartitioner(some).Run(graph_, 8));
  EXPECT_LT(qs.remote_accesses, qn.remote_accesses);
}

TEST_F(PartitionFixture, SecondariesTargetHighCountEmbeddings) {
  // Eq. 6: a worker's secondaries are the embeddings its samples use most
  // among non-local ones. Verify the chosen set's count(x, i) dominates a
  // random non-chosen embedding's count.
  HybridPartitionerOptions opt;
  opt.secondary_fraction = 0.01;
  Partition p = HybridPartitioner(opt).Run(graph_, 4);
  // Recompute count(x, i) from scratch.
  std::vector<int64_t> cnt(graph_.num_embeddings() * 4, 0);
  for (int64_t s = 0; s < graph_.num_samples(); ++s) {
    const int w = p.sample_owner[s];
    for (int f = 0; f < graph_.arity(); ++f) {
      ++cnt[graph_.SampleNeighbors(s)[f] * 4 + w];
    }
  }
  for (int w = 0; w < 4; ++w) {
    if (p.secondaries[w].empty()) continue;
    int64_t min_chosen = INT64_MAX;
    std::set<FeatureId> chosen(p.secondaries[w].begin(),
                               p.secondaries[w].end());
    for (FeatureId x : p.secondaries[w]) {
      min_chosen = std::min(min_chosen, cnt[x * 4 + w]);
    }
    // Every non-chosen remote embedding has count <= min over chosen.
    for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
      if (p.embedding_owner[x] == w || chosen.count(x)) continue;
      EXPECT_LE(cnt[x * 4 + w], min_chosen);
    }
  }
}

TEST_F(PartitionFixture, BalanceStaysBounded) {
  HybridPartitionerOptions opt;
  Partition p = HybridPartitioner(opt).Run(graph_, 8);
  PartitionQuality q = EvaluatePartition(graph_, p);
  const double avg = graph_.num_samples() / 8.0;
  EXPECT_LT(q.max_samples, avg * 1.6);
  EXPECT_GT(q.min_samples, avg * 0.4);
}

TEST_F(PartitionFixture, WeightedVariantPrefersCheapLinks) {
  // Two "machines" of 2 workers; cross-machine 10x more expensive.
  std::vector<std::vector<double>> w(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        w[i][j] = 0;
      } else if (i / 2 != j / 2) {
        w[i][j] = 10.0;
      }
    }
  }
  HybridPartitionerOptions uniform;
  uniform.secondary_fraction = 0.0;
  HybridPartitionerOptions weighted = uniform;
  weighted.comm_weight = w;
  Partition pu = HybridPartitioner(uniform).Run(graph_, 4);
  Partition pw = HybridPartitioner(weighted).Run(graph_, 4);
  const auto qu = EvaluatePartition(graph_, pu, w);
  const auto qw = EvaluatePartition(graph_, pw, w);
  // The weighted (hierarchical) run must cost less under the weighted
  // metric — the Figure 9(a) effect.
  EXPECT_LT(qw.weighted_remote, qu.weighted_remote);
}

TEST_F(PartitionFixture, WorkerCapacityShiftsSampleTargets) {
  // §3's heterogeneity-aware balancing: a worker with half the capacity
  // should own roughly half the samples of its peers.
  HybridPartitionerOptions opt;
  opt.secondary_fraction = 0.0;
  opt.worker_capacity = {0.5, 1.0, 1.0, 1.0};
  Partition p = HybridPartitioner(opt).Run(graph_, 4);
  std::vector<int64_t> counts(4, 0);
  for (int o : p.sample_owner) ++counts[o];
  const double expected_slow = graph_.num_samples() * 0.5 / 3.5;
  EXPECT_NEAR(static_cast<double>(counts[0]), expected_slow,
              expected_slow * 0.35);
  for (int w = 1; w < 4; ++w) {
    EXPECT_GT(counts[w], counts[0]);
  }
}

TEST_F(PartitionFixture, UniformCapacityMatchesDefault) {
  HybridPartitionerOptions with;
  with.worker_capacity = {1.0, 1.0, 1.0, 1.0};
  HybridPartitionerOptions without;
  Partition a = HybridPartitioner(with).Run(graph_, 4);
  Partition b = HybridPartitioner(without).Run(graph_, 4);
  EXPECT_EQ(a.sample_owner, b.sample_owner);
  EXPECT_EQ(a.embedding_owner, b.embedding_owner);
}

TEST_F(PartitionFixture, DeterministicForSeed) {
  HybridPartitionerOptions opt;
  opt.seed = 99;
  Partition a = HybridPartitioner(opt).Run(graph_, 4);
  Partition b = HybridPartitioner(opt).Run(graph_, 4);
  EXPECT_EQ(a.sample_owner, b.sample_owner);
  EXPECT_EQ(a.embedding_owner, b.embedding_owner);
  EXPECT_EQ(a.secondaries, b.secondaries);
}

// ---------------------------------------------------------- ReplicaIndex

TEST_F(PartitionFixture, ReplicaIndexAgreesWithPartition) {
  HybridPartitionerOptions opt;
  Partition p = HybridPartitioner(opt).Run(graph_, 4);
  ReplicaIndex idx(p);
  for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
    EXPECT_EQ(idx.PrimaryOwner(x), p.embedding_owner[x]);
    EXPECT_TRUE(idx.HasReplica(p.embedding_owner[x], x));
  }
  for (int w = 0; w < 4; ++w) {
    std::set<FeatureId> set(p.secondaries[w].begin(),
                            p.secondaries[w].end());
    for (int64_t x = 0; x < graph_.num_embeddings(); ++x) {
      EXPECT_EQ(idx.HasSecondary(w, x), set.count(x) > 0);
    }
  }
}

// --------------------------------------------------------------- Quality

TEST_F(PartitionFixture, FetchMatrixRowSumsEqualAccesses) {
  Partition p = RandomPartitioner().Run(graph_, 4);
  PartitionQuality q = EvaluatePartition(graph_, p);
  int64_t matrix_total = 0;
  for (const auto& row : q.fetch_matrix) {
    for (int64_t v : row) matrix_total += v;
  }
  EXPECT_EQ(matrix_total, q.total_accesses);
  EXPECT_EQ(q.total_accesses, graph_.num_edges());
  // Off-diagonal total equals remote accesses.
  int64_t off_diag = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) off_diag += q.fetch_matrix[a][b];
    }
  }
  EXPECT_EQ(off_diag, q.remote_accesses);
}

TEST_F(PartitionFixture, WeightedRemoteWithIdentityEqualsCount) {
  Partition p = RandomPartitioner().Run(graph_, 4);
  PartitionQuality q = EvaluatePartition(graph_, p);
  EXPECT_DOUBLE_EQ(q.weighted_remote,
                   static_cast<double>(q.remote_accesses));
}

// Property sweep: validity across partition counts.
class PartitionerSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerSweep, AllPartitionersValidAtN) {
  const int n = GetParam();
  CtrDataset d = GenerateSyntheticCtr(TestConfig());
  Bigraph g(d);
  ExpectValidPartition(RandomPartitioner().Run(g, n), g, n);
  ExpectValidPartition(BiCutPartitioner().Run(g, n), g, n);
  HybridPartitionerOptions opt;
  opt.rounds = 1;
  ExpectValidPartition(HybridPartitioner(opt).Run(g, n), g, n);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace hetgmp
