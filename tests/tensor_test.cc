#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "common/random.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace hetgmp {
namespace {

// Reference O(n^3) matmul for cross-checking the production kernels.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor out({a.dim(0), b.dim(1)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(1); ++j) {
      float acc = 0;
      for (int64_t k = 0; k < a.dim(1); ++k) acc += a.at(i, k) * b.at(k, j);
      out.at(i, j) = acc;
    }
  }
  return out;
}

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = rng.NextFloat(-2, 2);
  return t;
}

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.bytes(), 48u);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 3.5f);
  t.Fill(-1.0f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), -1.0f);
}

TEST(TensorTest, RowAccessIsRowMajor) {
  Tensor t({2, 3});
  for (int64_t i = 0; i < 6; ++i) t.at(i) = static_cast<float>(i);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.row(1)[2], 5.0f);
}

TEST(TensorTest, ResizeZeroes) {
  Tensor t = Tensor::Full({2, 2}, 7.0f);
  t.Resize({3, 3});
  EXPECT_EQ(t.size(), 9);
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  Tensor z({0, 5});
  EXPECT_TRUE(z.empty());
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor({7}).ShapeString(), "[7]");
}

TEST(TensorTest, XavierUniformWithinLimit) {
  Rng rng(1);
  Tensor t = Tensor::XavierUniform(64, 32, &rng);
  const float limit = std::sqrt(6.0f / (64 + 32));
  float max_abs = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(t.at(i)));
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, limit * 0.5f);  // actually spreads out
}

TEST(TensorTest, GaussianStddev) {
  Rng rng(2);
  Tensor t = Tensor::Gaussian({100, 100}, 0.5f, &rng);
  double sum = 0, sum_sq = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t.at(i);
    sum_sq += t.at(i) * t.at(i);
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum_sq / t.size()), 0.5, 0.02);
}

TEST(OpsTest, MatMulMatchesNaive) {
  Tensor a = RandomTensor({7, 5}, 3);
  Tensor b = RandomTensor({5, 9}, 4);
  Tensor out;
  MatMul(a, b, &out);
  Tensor ref = NaiveMatMul(a, b);
  ASSERT_EQ(out.size(), ref.size());
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.at(i), ref.at(i), 1e-4);
  }
}

TEST(OpsTest, MatMulTransBMatchesNaive) {
  Tensor a = RandomTensor({6, 4}, 5);
  Tensor bt = RandomTensor({8, 4}, 6);  // b^T stored as [n, k]
  Tensor out;
  MatMulTransB(a, bt, &out);
  // Build b = bt^T and compare.
  Tensor b({4, 8});
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 4; ++j) b.at(j, i) = bt.at(i, j);
  }
  Tensor ref = NaiveMatMul(a, b);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.at(i), ref.at(i), 1e-4);
  }
}

TEST(OpsTest, MatMulTransAMatchesNaive) {
  Tensor at = RandomTensor({4, 6}, 7);  // a^T stored as [k, m]
  Tensor b = RandomTensor({4, 5}, 8);
  Tensor out;
  MatMulTransA(at, b, &out);
  Tensor a({6, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) a.at(j, i) = at.at(i, j);
  }
  Tensor ref = NaiveMatMul(a, b);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.at(i), ref.at(i), 1e-4);
  }
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = RandomTensor({3, 3}, 9);
  Tensor eye({3, 3});
  for (int64_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  Tensor out;
  MatMul(a, eye, &out);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(out.at(i), a.at(i));
}

TEST(OpsTest, AddBiasRows) {
  Tensor x({2, 3});
  Tensor bias({3});
  for (int64_t c = 0; c < 3; ++c) bias.at(c) = static_cast<float>(c + 1);
  AddBiasRows(&x, bias);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(x.at(r, c), static_cast<float>(c + 1));
    }
  }
}

TEST(OpsTest, SumRows) {
  Tensor grad({3, 2});
  for (int64_t i = 0; i < grad.size(); ++i) {
    grad.at(i) = static_cast<float>(i);
  }
  Tensor out;
  SumRows(grad, &out);
  EXPECT_FLOAT_EQ(out.at(0), 0 + 2 + 4);
  EXPECT_FLOAT_EQ(out.at(1), 1 + 3 + 5);
}

TEST(OpsTest, ReluForwardBackward) {
  Tensor x({1, 4});
  x.at(0) = -1;
  x.at(1) = 0;
  x.at(2) = 2;
  x.at(3) = -0.5;
  Tensor y;
  ReluForward(x, &y);
  EXPECT_EQ(y.at(0), 0);
  EXPECT_EQ(y.at(1), 0);
  EXPECT_EQ(y.at(2), 2);
  EXPECT_EQ(y.at(3), 0);
  Tensor dy = Tensor::Full({1, 4}, 1.0f);
  Tensor dx;
  ReluBackward(x, dy, &dx);
  EXPECT_EQ(dx.at(0), 0);
  EXPECT_EQ(dx.at(1), 0);  // derivative at 0 defined as 0
  EXPECT_EQ(dx.at(2), 1);
  EXPECT_EQ(dx.at(3), 0);
}

TEST(OpsTest, SigmoidValues) {
  Tensor x({3});
  x.at(0) = 0;
  x.at(1) = 100;
  x.at(2) = -100;
  Tensor y;
  SigmoidForward(x, &y);
  EXPECT_FLOAT_EQ(y.at(0), 0.5f);
  EXPECT_NEAR(y.at(1), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(2), 0.0f, 1e-6);
}

TEST(OpsTest, AxpyAndScaleAndCopy) {
  Tensor x = Tensor::Full({4}, 2.0f);
  Tensor y = Tensor::Full({4}, 1.0f);
  Axpy(3.0f, x, &y);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(y.at(i), 7.0f);
  Scale(&y, 0.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(y.at(i), 3.5f);
  Tensor z;
  Copy(y, &z);
  EXPECT_EQ(z.shape(), y.shape());
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(z.at(i), 3.5f);
}

TEST(OpsTest, DotAndNorm) {
  Tensor a({3}), b({3});
  for (int64_t i = 0; i < 3; ++i) {
    a.at(i) = static_cast<float>(i + 1);  // 1 2 3
    b.at(i) = 2.0f;
  }
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 14.0);
}

// Property sweep: kernels agree with the naive reference across shapes.
class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, AgreesWithNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = RandomTensor({m, k}, 100 + m);
  Tensor b = RandomTensor({k, n}, 200 + n);
  Tensor out;
  MatMul(a, b, &out);
  Tensor ref = NaiveMatMul(a, b);
  for (int64_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.at(i), ref.at(i), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 16, 1),
                      std::make_tuple(16, 1, 16), std::make_tuple(8, 8, 8),
                      std::make_tuple(33, 17, 5),
                      std::make_tuple(2, 64, 128)));

// --------------------------------------------------- quantized kernels

TEST(Fp16Test, KnownAnswers) {
  // IEEE 754 binary16 reference pairs (value, bits).
  const struct {
    float f;
    uint16_t h;
  } kCases[] = {
      {0.0f, 0x0000},      {-0.0f, 0x8000},     {1.0f, 0x3c00},
      {-1.0f, 0xbc00},     {2.0f, 0x4000},      {0.5f, 0x3800},
      {65504.0f, 0x7bff},  // largest normal half
      {6.103515625e-05f, 0x0400},   // smallest normal half (2^-14)
      {5.960464477539063e-08f, 0x0001},  // smallest subnormal (2^-24)
      {-0.333251953125f, 0xb555},  // nearest half to -1/3
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(Fp16FromFloat(c.f), c.h) << c.f;
    EXPECT_EQ(Fp16ToFloat(c.h), c.f) << std::hex << c.h;
  }
  // Overflow saturates to inf; inf and NaN survive the round trip.
  EXPECT_EQ(Fp16FromFloat(1e6f), 0x7c00);
  EXPECT_EQ(Fp16FromFloat(-1e6f), 0xfc00);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Fp16FromFloat(inf), 0x7c00);
  EXPECT_EQ(Fp16ToFloat(0x7c00), inf);
  EXPECT_EQ(Fp16ToFloat(0xfc00), -inf);
  EXPECT_TRUE(std::isnan(Fp16ToFloat(Fp16FromFloat(
      std::numeric_limits<float>::quiet_NaN()))));
  // Values below half the smallest subnormal flush to signed zero.
  EXPECT_EQ(Fp16FromFloat(1e-9f), 0x0000);
  EXPECT_EQ(Fp16FromFloat(-1e-9f), 0x8000);
}

TEST(Fp16Test, RoundTripIsExactForEveryHalf) {
  // float -> half -> float must be the identity on all 65536 bit patterns
  // (every binary16 value is exactly representable as a float).
  for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = Fp16ToFloat(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(Fp16ToFloat(Fp16FromFloat(f))));
      continue;
    }
    EXPECT_EQ(Fp16FromFloat(f), h) << std::hex << h;
  }
}

TEST(Fp16Test, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half
  // (1 + 2^-10); ties go to the even mantissa, i.e. down to 1.0.
  EXPECT_EQ(Fp16FromFloat(1.0f + 9.765625e-04f / 2.0f), 0x3c00);
  // Just above the tie rounds up.
  EXPECT_EQ(Fp16FromFloat(1.0f + 9.765625e-04f / 2.0f + 1e-7f), 0x3c01);
}

TEST(QuantizeRowTest, Int8RoundTripBoundAndDeterminism) {
  constexpr int64_t kN = 37;  // odd length exercises the scalar tail
  float src[kN];
  for (int64_t i = 0; i < kN; ++i) {
    src[i] = std::sin(static_cast<float>(i) * 0.7f) * 3.5f;
  }
  int8_t q[kN];
  const uint16_t scale_bits = QuantizeRowInt8(src, kN, q);
  const float scale = Fp16ToFloat(scale_bits);
  float max_abs = 0.0f;
  for (float v : src) max_abs = std::max(max_abs, std::fabs(v));
  // The scale always covers the row: no code may clamp.
  EXPECT_GE(scale * 127.0f, max_abs);
  float out[kN];
  DequantizeRowInt8(q, scale, out, kN);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_LE(std::fabs(out[i] - src[i]), 0.5f * scale + 1e-7f) << i;
  }
  // Same input, same codes — bit-stable.
  int8_t q2[kN];
  EXPECT_EQ(QuantizeRowInt8(src, kN, q2), scale_bits);
  EXPECT_EQ(std::memcmp(q, q2, sizeof(q)), 0);
}

TEST(QuantizeRowTest, Int8ZeroAndTinyRows) {
  float zeros[8] = {0};
  int8_t q[8];
  EXPECT_EQ(QuantizeRowInt8(zeros, 8, q), 0);
  float out[8];
  DequantizeRowInt8(q, Fp16ToFloat(0), out, 8);
  for (float v : out) EXPECT_EQ(v, 0.0f);
  // A row far below fp16's subnormal floor still gets a non-zero scale
  // (no division blow-ups, codes all zero-ish but finite).
  float tiny[8];
  for (int i = 0; i < 8; ++i) tiny[i] = 1e-30f;
  const uint16_t s = QuantizeRowInt8(tiny, 8, q);
  EXPECT_GT(Fp16ToFloat(s), 0.0f);
  DequantizeRowInt8(q, Fp16ToFloat(s), out, 8);
  for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(QuantizeRowTest, VectorAndScalarPathsAgreeBitForBit) {
  // n = 40 runs two full 16-lane tiles plus an 8-element scalar tail;
  // re-decoding the same data one element at a time (pure scalar path)
  // must agree exactly, which is what HETGMP_BIT_STABLE promises.
  constexpr int64_t kN = 40;
  float src[kN];
  for (int64_t i = 0; i < kN; ++i) {
    src[i] = std::cos(static_cast<float>(i) * 1.3f) * 0.02f;
  }
  int8_t q[kN];
  const float scale = Fp16ToFloat(QuantizeRowInt8(src, kN, q));
  float vec_out[kN];
  DequantizeRowInt8(q, scale, vec_out, kN);
  for (int64_t i = 0; i < kN; ++i) {
    float one;
    DequantizeRowInt8(q + i, scale, &one, 1);  // n=1 is always scalar
    EXPECT_EQ(vec_out[i], one) << i;
  }

  uint16_t h[kN];
  QuantizeRowFp16(src, kN, h);
  float hvec[kN];
  DequantizeRowFp16(h, hvec, kN);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hvec[i], Fp16ToFloat(h[i])) << i;
  }
}

}  // namespace
}  // namespace hetgmp
