#include <gtest/gtest.h>

#include <cmath>

#include "comm/fabric.h"
#include "comm/topology.h"
#include "common/random.h"
#include "metrics/auc.h"
#include "metrics/comm_report.h"

namespace hetgmp {
namespace {

// ------------------------------------------------------------------- AUC

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.2f, 0.8f, 0.9f}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, PerfectlyWrong) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5f, 0.5f, 0.5f, 0.5f}, {0, 1, 0, 1}), 0.5);
}

TEST(AucTest, KnownMixedValue) {
  // scores: 0.1(neg) 0.4(pos) 0.35(neg) 0.8(pos)
  // pairs (pos, neg): (0.4,0.1)✓ (0.4,0.35)✓ (0.8,0.1)✓ (0.8,0.35)✓ → 1.0
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.4f, 0.35f, 0.8f}, {0, 1, 0, 1}), 1.0);
  // Swap one: 0.3(pos) < 0.35(neg) → 3/4 correct pairs.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.3f, 0.35f, 0.8f}, {0, 1, 0, 1}),
                   0.75);
}

TEST(AucTest, TiesGetHalfCredit) {
  // One positive and one negative share a score: 0.5 credit for the pair.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.5f, 0.5f}, {0, 1}), 0.5);
  // pos at 0.5, negs at 0.5 and 0.3: pairs → 0.5 + 1 = 1.5 / 2.
  EXPECT_DOUBLE_EQ(ComputeAuc({0.3f, 0.5f, 0.5f}, {0, 0, 1}), 0.75);
}

TEST(AucTest, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.9f}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({0.1f, 0.9f}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ComputeAuc({}, {}), 0.5);
}

TEST(AucTest, InvariantUnderMonotoneTransform) {
  Rng rng(1);
  std::vector<float> scores, labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(rng.NextFloat(-3, 3));
    labels.push_back(rng.NextBool(0.4) ? 1.0f : 0.0f);
  }
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(std::exp(0.5f * s) + 2.0f);
  }
  EXPECT_NEAR(ComputeAuc(scores, labels),
              ComputeAuc(transformed, labels), 1e-12);
}

TEST(AucTest, MatchesBruteForcePairCount) {
  Rng rng(2);
  std::vector<float> scores, labels;
  for (int i = 0; i < 200; ++i) {
    // Coarse grid to force plenty of ties.
    scores.push_back(static_cast<float>(rng.NextUint64(10)) / 10.0f);
    labels.push_back(rng.NextBool(0.5) ? 1.0f : 0.0f);
  }
  double wins = 0, pairs = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5) continue;
      pairs += 1;
      if (scores[i] > scores[j]) {
        wins += 1;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(ComputeAuc(scores, labels), wins / pairs, 1e-9);
}

// ----------------------------------------------------------- CommReport

TEST(CommReportTest, BreakdownNormalizesPerIteration) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  fabric.Transfer(0, 1, 1000, TrafficClass::kEmbedding);
  fabric.Transfer(0, 1, 100, TrafficClass::kIndexClock);
  fabric.Transfer(0, 1, 400, TrafficClass::kAllReduce);
  CommBreakdown b = SnapshotBreakdown(fabric, 10);
  EXPECT_DOUBLE_EQ(b.embedding_bytes_per_iter, 100.0);
  EXPECT_DOUBLE_EQ(b.index_clock_bytes_per_iter, 10.0);
  EXPECT_DOUBLE_EQ(b.allreduce_bytes_per_iter, 40.0);
  EXPECT_DOUBLE_EQ(b.total_per_iter(), 150.0);
  EXPECT_FALSE(b.ToString().empty());
}

TEST(CommReportTest, HeatmapRendersRows) {
  std::vector<std::vector<uint64_t>> m = {{0, 100}, {50, 0}};
  const std::string out = RenderPairHeatmap(m);
  // Two rows, with shade characters.
  EXPECT_NE(out.find("w 0"), std::string::npos);
  EXPECT_NE(out.find("w 1"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // max cell
  EXPECT_NE(out.find('.'), std::string::npos);  // zero cell
}

TEST(CommReportTest, HeatmapAllZeros) {
  std::vector<std::vector<uint64_t>> m(3, std::vector<uint64_t>(3, 0));
  const std::string out = RenderPairHeatmap(m);
  EXPECT_EQ(out.find('@'), std::string::npos);
}

}  // namespace
}  // namespace hetgmp
