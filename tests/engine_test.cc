#include <gtest/gtest.h>

#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 91;
  return cfg;
}

struct Fixtures {
  Fixtures()
      : train(GenerateSyntheticCtr(TinyConfig())),
        test(train.SplitTail(0.2)),
        topology(Topology::FourGpuPcie()) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig SmallEngineConfig(Strategy s) {
  EngineConfig cfg;
  cfg.strategy = s;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  return cfg;
}

// ---------------------------------------------------------------- Config

TEST(EngineConfigTest, StrategyDefaults) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHugeCtr;
  ApplyStrategyDefaults(&cfg);
  EXPECT_EQ(cfg.placement, PlacementPolicy::kRandom);
  EXPECT_EQ(cfg.consistency, ConsistencyMode::kBsp);
  EXPECT_DOUBLE_EQ(cfg.hybrid_options.secondary_fraction, 0.0);

  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  EXPECT_EQ(cfg.placement, PlacementPolicy::kHybrid);
  EXPECT_EQ(cfg.consistency, ConsistencyMode::kGraphBounded);

  cfg.strategy = Strategy::kTfPs;
  ApplyStrategyDefaults(&cfg);
  EXPECT_EQ(cfg.consistency, ConsistencyMode::kAsp);
}

TEST(EngineConfigTest, ToStringMentionsStrategy) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  cfg.bound.s = 100;
  EXPECT_NE(cfg.ToString().find("HET-GMP"), std::string::npos);
  EXPECT_NE(cfg.ToString().find("s=100"), std::string::npos);
  cfg.bound.s = StalenessBound::kUnbounded;
  EXPECT_NE(cfg.ToString().find("s=inf"), std::string::npos);
}

TEST(EngineConfigTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kTfPs), "TF-PS");
  EXPECT_STREQ(StrategyName(Strategy::kParallax), "Parallax");
  EXPECT_STREQ(StrategyName(Strategy::kHugeCtr), "HugeCTR");
  EXPECT_STREQ(StrategyName(Strategy::kHetMp), "HET-MP");
  EXPECT_STREQ(StrategyName(Strategy::kHetGmp), "HET-GMP");
}

// -------------------------------------------------------- BuildPartition

TEST(BuildPartitionTest, HybridFillsTopologyWeights) {
  Fixtures f;
  Bigraph graph(f.train);
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  Partition p = BuildPartition(cfg, graph, f.topology);
  EXPECT_EQ(p.num_parts, 4);
  EXPECT_GT(p.TotalSecondaries(), 0);
}

TEST(BuildPartitionTest, RandomPlacementHasNoSecondaries) {
  Fixtures f;
  Bigraph graph(f.train);
  EngineConfig cfg = SmallEngineConfig(Strategy::kHugeCtr);
  Partition p = BuildPartition(cfg, graph, f.topology);
  EXPECT_EQ(p.TotalSecondaries(), 0);
}

// ---------------------------------------------------------------- Engine

TEST(EngineTest, TrainsAndImprovesAuc) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 4);
  ASSERT_FALSE(r.train.rounds.empty());
  EXPECT_GT(r.train.final_auc, 0.62);
  EXPECT_GT(r.train.final_auc, r.train.rounds.front().auc - 0.02);
  EXPECT_GT(r.train.total_sim_time, 0.0);
  EXPECT_GT(r.train.samples_processed, 0);
}

TEST(EngineTest, AllStrategiesRunToCompletion) {
  Fixtures f;
  for (Strategy s : {Strategy::kTfPs, Strategy::kParallax,
                     Strategy::kHugeCtr, Strategy::kHetMp,
                     Strategy::kHetGmp}) {
    EngineConfig cfg = SmallEngineConfig(s);
    ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 1);
    EXPECT_GT(r.train.total_iterations, 0) << StrategyName(s);
    EXPECT_GT(r.train.final_auc, 0.5) << StrategyName(s);
  }
}

TEST(EngineTest, AucTargetStopsEarly) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology,
                                     /*max_epochs=*/50,
                                     /*auc_target=*/0.60);
  EXPECT_TRUE(r.train.reached_target);
  // Early stop: far fewer rounds than 50 epochs × 2 rounds.
  EXPECT_LT(static_cast<int>(r.train.rounds.size()), 100);
}

TEST(EngineTest, SimTimeBudgetStops) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetMp);
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology,
                                     /*max_epochs=*/50, /*auc_target=*/-1,
                                     /*sim_time_budget=*/1e-5);
  EXPECT_FALSE(r.train.reached_target);
  EXPECT_LE(static_cast<int>(r.train.rounds.size()), 2);
}

TEST(EngineTest, CountersAreCumulativeAndConsistent) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 2);
  uint64_t prev_emb = 0;
  int64_t prev_iters = 0;
  double prev_time = 0;
  for (const RoundStats& rs : r.train.rounds) {
    EXPECT_GE(rs.embedding_bytes, prev_emb);
    EXPECT_GE(rs.iterations_done, prev_iters);
    EXPECT_GE(rs.sim_time, prev_time);
    prev_emb = rs.embedding_bytes;
    prev_iters = rs.iterations_done;
    prev_time = rs.sim_time;
  }
  // comm + compute accounting is populated.
  EXPECT_GT(r.train.comm_time, 0.0);
  EXPECT_GT(r.train.compute_time, 0.0);
}

TEST(EngineTest, HetGmpMovesFewerEmbeddingBytesThanHetMp) {
  Fixtures f;
  EngineConfig gmp = SmallEngineConfig(Strategy::kHetGmp);
  gmp.bound.s = 100;
  EngineConfig mp = SmallEngineConfig(Strategy::kHetMp);
  ExperimentResult rg = RunExperiment(gmp, f.train, f.test, f.topology, 2);
  ExperimentResult rm = RunExperiment(mp, f.train, f.test, f.topology, 2);
  EXPECT_LT(rg.train.rounds.back().embedding_bytes,
            rm.train.rounds.back().embedding_bytes);
}

TEST(EngineTest, StalenessZeroRefreshesMoreThanLargeS) {
  Fixtures f;
  EngineConfig tight = SmallEngineConfig(Strategy::kHetGmp);
  tight.bound.s = 0;
  EngineConfig loose = SmallEngineConfig(Strategy::kHetGmp);
  loose.bound.s = 10000;
  ExperimentResult rt = RunExperiment(tight, f.train, f.test, f.topology, 2);
  ExperimentResult rl = RunExperiment(loose, f.train, f.test, f.topology, 2);
  EXPECT_GT(rt.train.rounds.back().intra_refreshes,
            rl.train.rounds.back().intra_refreshes);
  EXPECT_GE(rt.train.rounds.back().embedding_bytes,
            rl.train.rounds.back().embedding_bytes);
}

TEST(EngineTest, UnboundedStalenessNeverRefreshes) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  cfg.bound.s = StalenessBound::kUnbounded;
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 2);
  EXPECT_EQ(r.train.rounds.back().intra_refreshes, 0);
  EXPECT_EQ(r.train.rounds.back().inter_refreshes, 0);
}

TEST(EngineTest, PsStrategiesHaveNoWorkerPairTraffic) {
  // TF-PS moves embeddings through the host, not worker-to-worker; the
  // pairwise fetch matrix must stay empty while total bytes grow.
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kTfPs);
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  TrainResult r = engine.Train(1);
  EXPECT_GT(engine.fabric().TotalBytes(TrafficClass::kEmbedding), 0u);
  auto m = engine.fabric().PairMatrix(TrafficClass::kEmbedding);
  for (const auto& row : m) {
    for (uint64_t v : row) EXPECT_EQ(v, 0u);
  }
}

TEST(EngineTest, SingleWorkerHasNoEmbeddingTraffic) {
  Fixtures f;
  std::vector<std::vector<LinkType>> links(1, {LinkType::kLocal});
  Topology solo("solo", {0}, links);
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetMp);
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, solo);
  Engine engine(cfg, f.train, f.test, solo, part);
  TrainResult r = engine.Train(1);
  EXPECT_EQ(engine.fabric().TotalBytes(TrafficClass::kEmbedding), 0u);
  EXPECT_EQ(engine.fabric().TotalBytes(TrafficClass::kAllReduce), 0u);
  EXPECT_GT(r.final_auc, 0.55);
}

TEST(EngineTest, EvaluateAucIsOrdered) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  const double before = engine.EvaluateAuc();
  engine.Train(3);
  const double after = engine.EvaluateAuc();
  EXPECT_NEAR(before, 0.5, 0.08);  // untrained ≈ chance
  EXPECT_GT(after, before + 0.05);
}

TEST(EngineTest, SspModeRuns) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(Strategy::kHetGmp);
  cfg.consistency = ConsistencyMode::kSsp;
  cfg.ssp_slack = 2;
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 1);
  EXPECT_GT(r.train.total_iterations, 0);
}

class StrategySweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategySweep, ByteCountersArePopulatedSanely) {
  Fixtures f;
  EngineConfig cfg = SmallEngineConfig(GetParam());
  ExperimentResult r = RunExperiment(cfg, f.train, f.test, f.topology, 1);
  const RoundStats& last = r.train.rounds.back();
  EXPECT_GT(last.embedding_bytes, 0u);
  EXPECT_GT(last.index_clock_bytes, 0u);
  EXPECT_GT(last.allreduce_bytes, 0u);
  // Embedding payloads are whole rows: divisible by row bytes.
  EXPECT_EQ(last.embedding_bytes % (cfg.embedding_dim * sizeof(float)), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, StrategySweep,
                         ::testing::Values(Strategy::kTfPs,
                                           Strategy::kParallax,
                                           Strategy::kHugeCtr,
                                           Strategy::kHetMp,
                                           Strategy::kHetGmp));

}  // namespace
}  // namespace hetgmp
