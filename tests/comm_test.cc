#include <gtest/gtest.h>

#include <thread>

#include "comm/allreduce.h"
#include "comm/fabric.h"
#include "comm/topology.h"
#include "common/random.h"

namespace hetgmp {
namespace {

// -------------------------------------------------------------- Topology

TEST(TopologyTest, FourGpuNvlinkPreset) {
  Topology t = Topology::FourGpuNvlink();
  EXPECT_EQ(t.num_workers(), 4);
  EXPECT_EQ(t.num_machines(), 1);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) {
        EXPECT_EQ(t.link(a, b), LinkType::kLocal);
      } else {
        EXPECT_EQ(t.link(a, b), LinkType::kNvlink);
      }
    }
  }
}

TEST(TopologyTest, EightGpuQpiHasTwoSwitchGroups) {
  Topology t = Topology::EightGpuQpi();
  EXPECT_EQ(t.num_workers(), 8);
  EXPECT_EQ(t.link(0, 3), LinkType::kPcie);   // same group
  EXPECT_EQ(t.link(0, 4), LinkType::kQpi);    // across groups
  EXPECT_EQ(t.link(7, 4), LinkType::kPcie);
}

TEST(TopologyTest, ClusterAUsesEthernetAcrossNodes) {
  Topology t = Topology::ClusterA(16);
  EXPECT_EQ(t.num_machines(), 2);
  EXPECT_EQ(t.machine_of(0), 0);
  EXPECT_EQ(t.machine_of(8), 1);
  EXPECT_EQ(t.link(0, 8), LinkType::kEth1G);
  EXPECT_EQ(t.link(0, 1), LinkType::kPcie);
  EXPECT_EQ(t.link(0, 5), LinkType::kQpi);
}

TEST(TopologyTest, ClusterBNvlinkIslandsOfFour) {
  Topology t = Topology::ClusterB(16);
  EXPECT_EQ(t.num_machines(), 2);
  EXPECT_EQ(t.link(0, 3), LinkType::kNvlink);
  EXPECT_EQ(t.link(0, 4), LinkType::kQpi);   // across islands, same node
  EXPECT_EQ(t.link(0, 8), LinkType::kEth10G);
}

TEST(TopologyTest, BandwidthOrdering) {
  // The calibration constants must preserve the hardware ordering.
  EXPECT_GT(LinkBandwidthBytesPerSec(LinkType::kNvlink),
            LinkBandwidthBytesPerSec(LinkType::kPcie));
  EXPECT_GT(LinkBandwidthBytesPerSec(LinkType::kPcie),
            LinkBandwidthBytesPerSec(LinkType::kQpi));
  EXPECT_GT(LinkBandwidthBytesPerSec(LinkType::kQpi),
            LinkBandwidthBytesPerSec(LinkType::kEth10G));
  EXPECT_GT(LinkBandwidthBytesPerSec(LinkType::kEth10G),
            LinkBandwidthBytesPerSec(LinkType::kEth1G));
}

TEST(TopologyTest, CommWeightMatrixNormalized) {
  Topology t = Topology::ClusterB(16);
  auto w = t.CommWeightMatrix();
  double min_offdiag = 1e18;
  for (int a = 0; a < 16; ++a) {
    EXPECT_DOUBLE_EQ(w[a][a], 0.0);
    for (int b = 0; b < 16; ++b) {
      if (a != b) min_offdiag = std::min(min_offdiag, w[a][b]);
    }
  }
  EXPECT_DOUBLE_EQ(min_offdiag, 1.0);
  // Ethernet weight must dwarf NVLink weight.
  EXPECT_GT(w[0][8], 50.0);
  EXPECT_DOUBLE_EQ(w[0][1], 1.0);
}

TEST(TopologyTest, UniformWeightMatrix) {
  Topology t = Topology::EightGpuQpi();
  auto w = t.UniformWeightMatrix();
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_DOUBLE_EQ(w[a][b], a == b ? 0.0 : 1.0);
    }
  }
}

TEST(TopologyTest, HostBandwidthIsSharedAcrossWorkers) {
  Topology t4 = Topology::FourGpuPcie();
  Topology t8 = Topology::EightGpuQpi();
  // More co-located workers → less host bandwidth each (PS contention).
  EXPECT_GT(t4.HostBandwidthBytesPerSec(0, 0),
            t8.HostBandwidthBytesPerSec(0, 0));
}

TEST(TopologyTest, CrossMachineHostSlower) {
  Topology t = Topology::ClusterA(16);
  EXPECT_GT(t.HostBandwidthBytesPerSec(0, 0),
            t.HostBandwidthBytesPerSec(0, 1));
  EXPECT_LT(t.HostLatencySec(0, 0), t.HostLatencySec(0, 1) + 1e-9);
}

// ---------------------------------------------------------------- Fabric

TEST(FabricTest, CountsExactBytes) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  fabric.Transfer(0, 1, 1000, TrafficClass::kEmbedding);
  fabric.Transfer(0, 1, 500, TrafficClass::kEmbedding);
  fabric.Transfer(1, 0, 200, TrafficClass::kIndexClock);
  EXPECT_EQ(fabric.PairBytes(0, 1, TrafficClass::kEmbedding), 1500u);
  EXPECT_EQ(fabric.PairBytes(1, 0, TrafficClass::kIndexClock), 200u);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kEmbedding), 1500u);
  EXPECT_EQ(fabric.TotalBytes(), 1700u);
}

TEST(FabricTest, LocalTransferIsFreeAndUncounted) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  EXPECT_DOUBLE_EQ(fabric.Transfer(2, 2, 1 << 20, TrafficClass::kEmbedding),
                   0.0);
  EXPECT_EQ(fabric.TotalBytes(), 0u);
}

TEST(FabricTest, TimeScalesWithBytes) {
  Topology topo = Topology::FourGpuPcie();
  Fabric fabric(topo);
  const double t1 = fabric.Transfer(0, 1, 1 << 20, TrafficClass::kEmbedding);
  const double t2 = fabric.Transfer(0, 1, 2 << 20, TrafficClass::kEmbedding);
  EXPECT_GT(t2, t1);
  // Doubling payload roughly doubles the bandwidth term.
  const double lat = topo.LatencySec(0, 1);
  EXPECT_NEAR((t2 - lat) / (t1 - lat), 2.0, 0.01);
}

TEST(FabricTest, SlowerLinkTakesLonger) {
  Topology topo = Topology::ClusterB(16);
  Fabric fabric(topo);
  const double nvlink = fabric.Transfer(0, 1, 1 << 20,
                                        TrafficClass::kEmbedding);
  const double eth = fabric.Transfer(0, 8, 1 << 20,
                                     TrafficClass::kEmbedding);
  EXPECT_GT(eth, nvlink * 10);
}

TEST(FabricTest, InterMachineNicContention) {
  // The same Ethernet payload is slower on a machine with more co-located
  // workers (shared NIC).
  Topology t16 = Topology::ClusterB(16);   // 8 per machine
  Topology t4 = Topology::ClusterB(4);
  // Build a 2-machine 4-worker cluster manually: 2 workers per machine.
  std::vector<int> machines = {0, 0, 1, 1};
  std::vector<std::vector<LinkType>> links(
      4, std::vector<LinkType>(4, LinkType::kEth10G));
  for (int i = 0; i < 4; ++i) links[i][i] = LinkType::kLocal;
  links[0][1] = links[1][0] = LinkType::kNvlink;
  links[2][3] = links[3][2] = LinkType::kNvlink;
  Topology small("2x2", machines, links);
  Fabric f16(t16), fsmall(small);
  const double crowded = f16.Transfer(0, 8, 1 << 20,
                                      TrafficClass::kEmbedding);
  const double roomy = fsmall.Transfer(0, 2, 1 << 20,
                                       TrafficClass::kEmbedding);
  EXPECT_GT(crowded, roomy * 3);
}

TEST(FabricTest, ResetClearsCounters) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  fabric.Transfer(0, 1, 100, TrafficClass::kEmbedding);
  fabric.TransferToHost(0, 0, 100, TrafficClass::kEmbedding);
  fabric.ResetCounters();
  EXPECT_EQ(fabric.TotalBytes(), 0u);
}

TEST(FabricTest, HostTransferCounted) {
  Topology topo = Topology::EightGpuQpi();
  Fabric fabric(topo);
  const double t = fabric.TransferToHost(3, 0, 4096,
                                         TrafficClass::kEmbedding);
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kEmbedding), 4096u);
}

TEST(FabricTest, HostTrafficExcludedFromPairMatrixButInTotals) {
  // Host (parameter-server) traffic lives in a separate per-class
  // counter: the pair matrix stays pure worker-to-worker, totals include
  // host bytes exactly once (no double counting via a synthetic
  // diagonal entry).
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  fabric.Transfer(0, 1, 1000, TrafficClass::kEmbedding);
  fabric.TransferToHost(2, 0, 500, TrafficClass::kEmbedding);

  const auto m = fabric.PairMatrix(TrafficClass::kEmbedding);
  uint64_t matrix_sum = 0;
  for (const auto& row : m) {
    for (uint64_t b : row) matrix_sum += b;
  }
  EXPECT_EQ(matrix_sum, 1000u);  // host bytes absent from the matrix
  EXPECT_EQ(fabric.PairBytes(2, 2, TrafficClass::kEmbedding), 0u);
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kEmbedding), 1500u);
  EXPECT_EQ(fabric.TotalBytes(), 1500u);
}

TEST(FabricTest, PairMatrixShapeAndContent) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  fabric.Transfer(2, 3, 777, TrafficClass::kEmbedding);
  auto m = fabric.PairMatrix(TrafficClass::kEmbedding);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[2][3], 777u);
  EXPECT_EQ(m[3][2], 0u);
}

TEST(FabricTest, ConcurrentCountingIsExact) {
  Topology topo = Topology::EightGpuQpi();
  Fabric fabric(topo);
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&fabric, w] {
      for (int i = 0; i < 1000; ++i) {
        fabric.Transfer(w, (w + 1) % 8, 8, TrafficClass::kIndexClock);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fabric.TotalBytes(TrafficClass::kIndexClock), 8u * 1000 * 8);
}

// ------------------------------------------------------------- AllReduce

TEST(AllReduceTest, BytesFormula) {
  EXPECT_EQ(RingAllReduceBytesPerWorker(1, 1000), 0u);
  EXPECT_EQ(RingAllReduceBytesPerWorker(4, 1000), 1500u);  // 2*(3/4)*1000
  EXPECT_EQ(RingAllReduceBytesPerWorker(8, 800), 1400u);
}

TEST(AllReduceTest, TimeZeroForSingleWorker) {
  std::vector<int> machines = {0};
  std::vector<std::vector<LinkType>> links(1, {LinkType::kLocal});
  Topology solo("solo", machines, links);
  EXPECT_DOUBLE_EQ(RingAllReduceTime(solo, 1 << 20), 0.0);
}

TEST(AllReduceTest, SlowestHopDominates) {
  // A ring through Ethernet must cost more than one through NVLink.
  const double fast = RingAllReduceTime(Topology::FourGpuNvlink(), 1 << 20);
  const double slow = RingAllReduceTime(Topology::ClusterB(16), 1 << 20);
  EXPECT_GT(slow, fast * 5);
}

TEST(AllReduceTest, AveragesValuesAcrossReplicas) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  std::vector<Tensor> tensors;
  for (int w = 0; w < 4; ++w) {
    tensors.push_back(Tensor::Full({3}, static_cast<float>(w)));
  }
  std::vector<std::vector<Tensor*>> replicas(4);
  for (int w = 0; w < 4; ++w) replicas[w] = {&tensors[w]};
  const double t = RingAllReduceAverage(&fabric, replicas);
  EXPECT_GT(t, 0.0);
  for (int w = 0; w < 4; ++w) {
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(tensors[w].at(i), 1.5f);  // (0+1+2+3)/4
    }
  }
  EXPECT_GT(fabric.TotalBytes(TrafficClass::kAllReduce), 0u);
}

TEST(AllReduceTest, SingleWorkerAverageIsNoop) {
  Topology topo("solo", {0}, {{LinkType::kLocal}});
  Fabric fabric(topo);
  Tensor t = Tensor::Full({2}, 5.0f);
  std::vector<std::vector<Tensor*>> replicas = {{&t}};
  EXPECT_DOUBLE_EQ(RingAllReduceAverage(&fabric, replicas), 0.0);
  EXPECT_FLOAT_EQ(t.at(0), 5.0f);
}

TEST(AllReduceTest, MultiTensorPayload) {
  Topology topo = Topology::FourGpuNvlink();
  Fabric fabric(topo);
  std::vector<Tensor> a, b;
  for (int w = 0; w < 4; ++w) {
    a.push_back(Tensor::Full({2}, static_cast<float>(w)));
    b.push_back(Tensor::Full({5}, static_cast<float>(-w)));
  }
  std::vector<std::vector<Tensor*>> replicas(4);
  for (int w = 0; w < 4; ++w) replicas[w] = {&a[w], &b[w]};
  RingAllReduceAverage(&fabric, replicas);
  for (int w = 0; w < 4; ++w) {
    EXPECT_FLOAT_EQ(a[w].at(0), 1.5f);
    EXPECT_FLOAT_EQ(b[w].at(0), -1.5f);
  }
}

}  // namespace
}  // namespace hetgmp
