#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/random.h"
#include "nn/activations.h"
#include "nn/cross_layer.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace hetgmp {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = rng.NextFloat(-1, 1);
  return t;
}

// Scalar probe loss L = Σ out_i * r_i for fixed random r, so dL/dout = r.
double ProbeLoss(const Tensor& out, const Tensor& probe) {
  double acc = 0;
  for (int64_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out.at(i)) * probe.at(i);
  }
  return acc;
}

// Finite-difference check of a layer's input gradient and every parameter
// gradient. The workhorse correctness test for the whole nn/ module.
void GradCheck(Layer* layer, const Tensor& input, double tol = 2e-2) {
  Tensor out;
  layer->Forward(input, &out);
  const Tensor probe = RandomTensor(out.shape(), 999);

  layer->ZeroGrads();
  Tensor grad_in;
  layer->Forward(input, &out);  // refresh caches
  layer->Backward(probe, &grad_in);
  ASSERT_EQ(grad_in.size(), input.size());

  const float eps = 1e-2f;
  auto loss_at = [&](const Tensor& in) {
    Tensor o;
    layer->Forward(in, &o);
    return ProbeLoss(o, probe);
  };

  // Input gradient (sampled positions to keep runtime sane).
  Rng pick(7);
  const int64_t input_checks = std::min<int64_t>(input.size(), 24);
  for (int64_t c = 0; c < input_checks; ++c) {
    const int64_t i = static_cast<int64_t>(pick.NextUint64(input.size()));
    Tensor plus = input, minus = input;
    plus.at(i) += eps;
    minus.at(i) -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in.at(i), numeric,
                tol * std::max(1.0, std::abs(numeric)))
        << "input grad at " << i;
  }

  // Parameter gradients. Re-run backward to refresh (forward above
  // clobbered caches), and sample positions per parameter tensor.
  layer->ZeroGrads();
  layer->Forward(input, &out);
  layer->Backward(probe, &grad_in);
  auto params = layer->Params();
  auto grads = layer->Grads();
  ASSERT_EQ(params.size(), grads.size());
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor* param = params[p];
    const int64_t checks = std::min<int64_t>(param->size(), 12);
    for (int64_t c = 0; c < checks; ++c) {
      const int64_t i = static_cast<int64_t>(pick.NextUint64(param->size()));
      const float saved = param->at(i);
      param->at(i) = saved + eps;
      const double lp = loss_at(input);
      param->at(i) = saved - eps;
      const double lm = loss_at(input);
      param->at(i) = saved;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grads[p]->at(i), numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "param " << p << " grad at " << i;
    }
  }
}

// ----------------------------------------------------------------- Dense

TEST(DenseTest, ForwardMatchesManual) {
  Rng rng(1);
  Dense layer(2, 2, &rng);
  // Overwrite params with known values.
  layer.Params()[0]->at(0, 0) = 1;
  layer.Params()[0]->at(0, 1) = 2;
  layer.Params()[0]->at(1, 0) = 3;
  layer.Params()[0]->at(1, 1) = 4;
  layer.Params()[1]->at(0) = 10;
  layer.Params()[1]->at(1) = 20;
  Tensor in({1, 2});
  in.at(0) = 1;
  in.at(1) = 1;
  Tensor out;
  layer.Forward(in, &out);
  EXPECT_FLOAT_EQ(out.at(0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(out.at(1), 2 + 4 + 20);
}

TEST(DenseTest, GradCheck) {
  Rng rng(2);
  Dense layer(5, 3, &rng);
  GradCheck(&layer, RandomTensor({4, 5}, 11));
}

TEST(DenseTest, GradientsAccumulateAcrossBackward) {
  Rng rng(3);
  Dense layer(3, 2, &rng);
  Tensor in = RandomTensor({2, 3}, 12);
  Tensor out, gin;
  layer.Forward(in, &out);
  Tensor probe = RandomTensor(out.shape(), 13);
  layer.ZeroGrads();
  layer.Backward(probe, &gin);
  const float once = layer.Grads()[0]->at(0);
  layer.Forward(in, &out);
  layer.Backward(probe, &gin);
  EXPECT_NEAR(layer.Grads()[0]->at(0), 2 * once, 1e-5);
  layer.ZeroGrads();
  EXPECT_EQ(layer.Grads()[0]->at(0), 0.0f);
}

// ------------------------------------------------------------------ Relu

TEST(ReluLayerTest, GradCheck) {
  Relu layer;
  // Keep inputs away from the kink at 0 for clean finite differences.
  Tensor in = RandomTensor({3, 6}, 14);
  for (int64_t i = 0; i < in.size(); ++i) {
    if (std::abs(in.at(i)) < 0.1f) in.at(i) = 0.5f;
  }
  GradCheck(&layer, in);
}

// ----------------------------------------------------------------- Cross

TEST(CrossNetworkTest, SingleLayerManual) {
  Rng rng(4);
  CrossNetwork cross(2, 1, &rng);
  // w = [1, 0], b = [0, 0] → out = x0 * x0[0] + x0.
  cross.Params()[0]->at(0) = 1;
  cross.Params()[0]->at(1) = 0;
  cross.Params()[1]->Fill(0);
  Tensor in({1, 2});
  in.at(0) = 2;
  in.at(1) = 3;
  Tensor out;
  cross.Forward(in, &out);
  // s = x·w = 2; out = x0*s + b + x = [2*2+2, 3*2+3] = [6, 9].
  EXPECT_FLOAT_EQ(out.at(0), 6);
  EXPECT_FLOAT_EQ(out.at(1), 9);
}

TEST(CrossNetworkTest, GradCheckOneLayer) {
  Rng rng(5);
  CrossNetwork cross(4, 1, &rng);
  GradCheck(&cross, RandomTensor({3, 4}, 15));
}

TEST(CrossNetworkTest, GradCheckTwoLayers) {
  Rng rng(6);
  CrossNetwork cross(4, 2, &rng);
  GradCheck(&cross, RandomTensor({2, 4}, 16), /*tol=*/3e-2);
}

TEST(CrossNetworkTest, ParamsListLayout) {
  Rng rng(7);
  CrossNetwork cross(5, 3, &rng);
  EXPECT_EQ(cross.Params().size(), 6u);  // (w, b) per layer
  EXPECT_EQ(cross.Grads().size(), 6u);
  for (Tensor* p : cross.Params()) EXPECT_EQ(p->size(), 5);
}

// ------------------------------------------------------------------- Mlp

TEST(MlpTest, OutputShape) {
  Rng rng(8);
  Mlp mlp(10, {8, 4}, 1, &rng);
  Tensor in = RandomTensor({6, 10}, 17);
  Tensor out;
  mlp.Forward(in, &out);
  EXPECT_EQ(out.dim(0), 6);
  EXPECT_EQ(out.dim(1), 1);
}

TEST(MlpTest, GradCheck) {
  Rng rng(9);
  Mlp mlp(6, {5}, 2, &rng);
  Tensor in = RandomTensor({3, 6}, 18);
  // Nudge away from ReLU kinks.
  for (int64_t i = 0; i < in.size(); ++i) in.at(i) *= 2.0f;
  GradCheck(&mlp, in, /*tol=*/3e-2);
}

TEST(MlpTest, NoHiddenLayersIsLinear) {
  Rng rng(10);
  Mlp mlp(4, {}, 2, &rng);
  EXPECT_EQ(mlp.num_layers(), 1);
  GradCheck(&mlp, RandomTensor({2, 4}, 19));
}

TEST(MlpTest, ParamCount) {
  Rng rng(11);
  Mlp mlp(10, {8}, 1, &rng);
  int64_t total = 0;
  for (Tensor* p : mlp.Params()) total += p->size();
  EXPECT_EQ(total, 10 * 8 + 8 + 8 * 1 + 1);
}

// ------------------------------------------------------------------ Loss

TEST(LossTest, KnownValues) {
  Tensor logits({2, 1});
  logits.at(0) = 0.0f;   // p = 0.5
  logits.at(1) = 0.0f;
  Tensor grad;
  const double loss = BceWithLogits(logits, {1.0f, 0.0f}, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  // d/dz = (sigmoid(z) - y) / batch.
  EXPECT_NEAR(grad.at(0), (0.5 - 1.0) / 2, 1e-6);
  EXPECT_NEAR(grad.at(1), (0.5 - 0.0) / 2, 1e-6);
}

TEST(LossTest, StableAtExtremeLogits) {
  Tensor logits({2, 1});
  logits.at(0) = 100.0f;
  logits.at(1) = -100.0f;
  Tensor grad;
  const double loss = BceWithLogits(logits, {1.0f, 0.0f}, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
  // Wrong-way extremes give ~|z| loss, still finite.
  const double bad = BceWithLogits(logits, {0.0f, 1.0f}, &grad);
  EXPECT_NEAR(bad, 100.0, 1e-3);
}

TEST(LossTest, GradMatchesFiniteDifference) {
  Tensor logits({4, 1});
  Rng rng(20);
  std::vector<float> labels = {1, 0, 1, 0};
  for (int64_t i = 0; i < 4; ++i) logits.at(i) = rng.NextFloat(-2, 2);
  Tensor grad;
  BceWithLogits(logits, labels, &grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 4; ++i) {
    Tensor lp = logits, lm = logits;
    lp.at(i) += eps;
    lm.at(i) -= eps;
    const double numeric = (BceWithLogitsLoss(lp, labels) -
                            BceWithLogitsLoss(lm, labels)) /
                           (2 * eps);
    EXPECT_NEAR(grad.at(i), numeric, 1e-4);
  }
}

TEST(LossTest, EvalVariantMatches) {
  Tensor logits({3, 1});
  logits.at(0) = 0.3f;
  logits.at(1) = -1.2f;
  logits.at(2) = 2.0f;
  std::vector<float> labels = {1, 0, 1};
  Tensor grad;
  EXPECT_DOUBLE_EQ(BceWithLogits(logits, labels, &grad),
                   BceWithLogitsLoss(logits, labels));
}

// ------------------------------------------------------------- Optimizer

TEST(OptimizerTest, SgdStep) {
  Tensor p = Tensor::Full({3}, 1.0f);
  Tensor g = Tensor::Full({3}, 0.5f);
  SgdOptimizer opt(0.1f);
  opt.Step({&p}, {&g});
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.at(i), 0.95f);
}

TEST(OptimizerTest, SgdWeightDecay) {
  Tensor p = Tensor::Full({1}, 2.0f);
  Tensor g = Tensor::Full({1}, 0.0f);
  SgdOptimizer opt(0.1f, /*weight_decay=*/0.5f);
  opt.Step({&p}, {&g});
  EXPECT_FLOAT_EQ(p.at(0), 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(OptimizerTest, AdaGradRowShrinksStepsOverTime) {
  float row[2] = {0, 0};
  float accum[2] = {0, 0};
  float grad[2] = {1, 1};
  AdaGradUpdateRow(row, grad, accum, 2, 0.1f);
  const float first_step = -row[0];
  EXPECT_NEAR(first_step, 0.1f, 1e-4);  // lr * g / sqrt(g^2)
  const float before = row[0];
  AdaGradUpdateRow(row, grad, accum, 2, 0.1f);
  const float second_step = before - row[0];
  EXPECT_LT(second_step, first_step);
  EXPECT_NEAR(second_step, 0.1f / std::sqrt(2.0f), 1e-4);
}

TEST(OptimizerTest, SgdRowUpdate) {
  float row[3] = {1, 2, 3};
  float grad[3] = {1, 1, 1};
  SgdUpdateRow(row, grad, 3, 0.5f);
  EXPECT_FLOAT_EQ(row[0], 0.5f);
  EXPECT_FLOAT_EQ(row[1], 1.5f);
  EXPECT_FLOAT_EQ(row[2], 2.5f);
}

// Parameterized gradient sweep across layer configurations.
struct LayerCase {
  const char* name;
  std::function<std::unique_ptr<Layer>(Rng*)> make;
  int64_t input_dim;
};

class LayerGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayerGradSweep, GradCheck) {
  static const LayerCase kCases[] = {
      {"dense_small",
       [](Rng* rng) { return std::make_unique<Dense>(3, 2, rng); }, 3},
      {"dense_wide",
       [](Rng* rng) { return std::make_unique<Dense>(16, 8, rng); }, 16},
      {"cross3",
       [](Rng* rng) { return std::make_unique<CrossNetwork>(6, 3, rng); },
       6},
      {"mlp_deep",
       [](Rng* rng) {
         return std::make_unique<Mlp>(8, std::vector<int64_t>{6, 4}, 1, rng);
       },
       8},
  };
  const LayerCase& c = kCases[GetParam()];
  Rng rng(1000 + GetParam());
  auto layer = c.make(&rng);
  Tensor in = RandomTensor({2, c.input_dim}, 2000 + GetParam());
  for (int64_t i = 0; i < in.size(); ++i) in.at(i) += (in.at(i) >= 0 ? 0.2f : -0.2f);
  GradCheck(layer.get(), in, /*tol=*/4e-2);
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace hetgmp
