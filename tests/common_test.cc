#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stringutil.h"
#include "common/threading.h"
#include "common/zipf.h"

namespace hetgmp {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("num_parts must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "num_parts must be > 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: num_parts must be > 0");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_TRUE(Status::OK() == Status());
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_TRUE(Status::NotFound("a") == Status::NotFound("a"));
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Wrapper(int v) {
  HETGMP_RETURN_IF_ERROR(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Wrapper(1).ok());
  EXPECT_EQ(Wrapper(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedDrawStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedDrawIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUint64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------ Zipf

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.2);
  double sum = 0.0;
  for (uint64_t k = 0; k < 100; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfSampler z(50, 0.9);
  for (uint64_t k = 1; k < 50; ++k) {
    EXPECT_GT(z.Pmf(k - 1), z.Pmf(k));
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(1000, 0.0);
  Rng rng(29);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.Sample(&rng)];
  // No item should be wildly over-represented.
  for (int c : counts) EXPECT_LT(c, 250);
}

TEST(ZipfTest, SingleElementSupport) {
  ZipfSampler z(1, 1.5);
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(&rng), 0u);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler z(37, 1.05);
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Sample(&rng), 37u);
}

// Property sweep: empirical frequencies match the analytic pmf across
// exponents, including the θ=1 special case of the inversion formulas.
class ZipfPmfMatchTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmfMatchTest, EmpiricalMatchesAnalytic) {
  const double theta = GetParam();
  constexpr uint64_t kN = 50;
  constexpr uint64_t kDraws = 200000;
  ZipfSampler z(kN, theta);
  Rng rng(41);
  std::vector<double> freq = EmpiricalZipfFrequencies(z, kDraws, &rng);
  for (uint64_t k = 0; k < kN; ++k) {
    const double expected = z.Pmf(k);
    // 5-sigma binomial tolerance plus a small absolute floor.
    const double tol =
        5.0 * std::sqrt(expected * (1 - expected) / kDraws) + 1e-4;
    EXPECT_NEAR(freq[k], expected, tol) << "theta=" << theta << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfPmfMatchTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.05, 1.2, 1.6,
                                           2.0));

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  Rng rng(43);
  ZipfSampler mild(1000, 0.6), heavy(1000, 1.4);
  auto top10_share = [&](const ZipfSampler& z) {
    Rng local(43);
    std::vector<double> f = EmpiricalZipfFrequencies(z, 100000, &local);
    double s = 0;
    for (int k = 0; k < 10; ++k) s += f[k];
    return s;
  };
  EXPECT_GT(top10_share(heavy), top10_share(mild) + 0.2);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.StdDev(), std::sqrt(1.25), 1e-9);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Gini(), 0.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Histogram h;
  Rng rng(47);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextDouble() * 100.0);
  double prev = h.Quantile(0.0);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double q = h.Quantile(p);
    EXPECT_GE(q, prev);
    EXPECT_GE(q, h.min());
    EXPECT_LE(q, h.max());
    prev = q;
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0);
}

TEST(HistogramTest, MergeMatchesCombinedAdds) {
  Histogram a, b, c;
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 10;
    a.Add(v);
    c.Add(v);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = 10 + rng.NextDouble() * 10;
    b.Add(v);
    c.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), c.count());
  // Sums differ only by float addition order.
  EXPECT_NEAR(a.sum(), c.sum(), 1e-9 * std::abs(c.sum()));
  EXPECT_DOUBLE_EQ(a.min(), c.min());
  EXPECT_DOUBLE_EQ(a.max(), c.max());
  EXPECT_NEAR(a.Quantile(0.5), c.Quantile(0.5), 1e-9);
}

TEST(HistogramTest, GiniOrdersEvenVsSkewed) {
  Histogram even, skewed;
  for (int i = 0; i < 1000; ++i) even.Add(5.0);
  for (int i = 0; i < 999; ++i) skewed.Add(0.01);
  skewed.Add(10000.0);
  EXPECT_LT(even.Gini(), 0.1);
  EXPECT_GT(skewed.Gini(), 0.8);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(3.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, PercentilesOnEmptyHistogramAreZero) {
  Histogram h;
  EXPECT_EQ(h.P50(), 0.0);
  EXPECT_EQ(h.P95(), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
  const std::vector<double> ps = h.PercentileMany({50.0, 95.0, 99.0});
  ASSERT_EQ(ps.size(), 3u);
  for (double p : ps) EXPECT_EQ(p, 0.0);
  EXPECT_TRUE(h.PercentileMany({}).empty());
}

TEST(HistogramTest, PercentilesWithSingleBucket) {
  // All samples land in one bucket: every percentile must return a value
  // from that bucket's range, and identical values must give identical
  // percentiles end to end.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(42.0);
  const std::vector<double> ps = h.PercentileMany({50.0, 95.0, 99.0});
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[0], ps[1]);
  EXPECT_DOUBLE_EQ(ps[1], ps[2]);
  EXPECT_GE(ps[0], h.min());
  EXPECT_LE(ps[0], h.max());
  // A true single-sample histogram behaves the same.
  Histogram one;
  one.Add(7.0);
  EXPECT_GE(one.P50(), one.min());
  EXPECT_LE(one.P99(), one.max());
}

TEST(HistogramTest, QuantileSkipsEmptyLeadingBuckets) {
  // Regression: with data only in later buckets, Quantile(0)'s cumulative
  // test (seen >= target with target == 0) used to be satisfied by the
  // first — empty — bucket, returning that bucket's upper edge (≈0 here)
  // instead of the true minimum. Empty buckets carry no mass and must be
  // skipped.
  Histogram h;
  h.Add(500.0);
  h.Add(900.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 500.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
  // p=1 lands in the last populated bucket, clamped to max().
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 900.0);
}

TEST(HistogramTest, QuantileSingleSampleIsTheSampleAtEveryP) {
  Histogram h;
  h.Add(123.0);
  for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // One sample, so every quantile is that sample (interpolation is
    // clamped to the observed [min, max] range, which is a point).
    EXPECT_DOUBLE_EQ(h.Quantile(p), 123.0) << "p=" << p;
  }
}

TEST(HistogramTest, QuantileZeroWithGapsBetweenPopulatedBuckets) {
  // Sparse population across decades: p0 must still be min() and the
  // quantile function must stay monotone through the empty gaps.
  Histogram h;
  for (double v : {0.001, 1.0, 1000.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  double prev = h.Quantile(0.0);
  for (double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double q = h.Quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST(HistogramTest, PercentileAccessorsMatchQuantile) {
  Histogram h;
  Rng rng(61);
  for (int i = 0; i < 5000; ++i) h.Add(rng.NextDouble() * 1000.0);
  EXPECT_DOUBLE_EQ(h.P50(), h.Quantile(0.50));
  EXPECT_DOUBLE_EQ(h.P95(), h.Quantile(0.95));
  EXPECT_DOUBLE_EQ(h.P99(), h.Quantile(0.99));
  EXPECT_DOUBLE_EQ(h.Percentile(95.0), h.Quantile(0.95));
  const std::vector<double> ps = h.PercentileMany({50.0, 95.0, 99.0});
  EXPECT_DOUBLE_EQ(ps[0], h.P50());
  EXPECT_DOUBLE_EQ(ps[1], h.P95());
  EXPECT_DOUBLE_EQ(ps[2], h.P99());
  EXPECT_LE(ps[0], ps[1]);
  EXPECT_LE(ps[1], ps[2]);
  EXPECT_DOUBLE_EQ(h.P999(), h.Quantile(0.999));
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(HistogramTest, PercentileManyAcceptsUnsortedAndDuplicateInput) {
  // The single-scan implementation sorts internally, so unsorted and
  // duplicated entries must come back in caller order, each bit-identical
  // to a standalone Percentile() call.
  Histogram h;
  Rng rng(62);
  for (int i = 0; i < 4000; ++i) h.Add(rng.NextDouble() * 500.0 + 0.5);
  const std::vector<double> percents = {99.0, 50.0, 99.9, 50.0,
                                        0.0,  100.0, 95.0};
  const std::vector<double> ps = h.PercentileMany(percents);
  ASSERT_EQ(ps.size(), percents.size());
  for (size_t i = 0; i < percents.size(); ++i) {
    EXPECT_DOUBLE_EQ(ps[i], h.Percentile(percents[i])) << "p=" << percents[i];
  }
  EXPECT_DOUBLE_EQ(ps[1], ps[3]);  // duplicates agree exactly
  EXPECT_DOUBLE_EQ(ps[4], h.min());
  EXPECT_DOUBLE_EQ(ps[5], h.max());
}

TEST(HistogramTest, PercentileManyEdgeCases) {
  // Empty input, empty histogram, single-sample histogram, and the
  // endpoints all behave like the per-entry accessors.
  Histogram h;
  EXPECT_TRUE(h.PercentileMany({}).empty());
  const std::vector<double> on_empty = h.PercentileMany({0.0, 99.9, 100.0});
  for (double p : on_empty) EXPECT_EQ(p, 0.0);

  h.Add(7.5);
  const std::vector<double> one = h.PercentileMany({0.0, 50.0, 99.9, 100.0});
  for (double p : one) EXPECT_DOUBLE_EQ(p, 7.5);

  // Tail percentiles between sparse buckets stay monotone.
  Histogram sparse;
  for (double v : {0.01, 1.0, 50.0, 2000.0}) sparse.Add(v);
  const std::vector<double> tail =
      sparse.PercentileMany({90.0, 99.0, 99.9, 100.0});
  for (size_t i = 1; i < tail.size(); ++i) EXPECT_GE(tail[i], tail[i - 1]);
  EXPECT_DOUBLE_EQ(tail.back(), sparse.max());
}

// ------------------------------------------------------------ stringutil

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(HumanBytes(uint64_t{5} * 1024 * 1024 * 1024), "5.0 GiB");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(17), "17");
  EXPECT_EQ(HumanCount(1500), "1.5k");
  EXPECT_EQ(HumanCount(2.5e6), "2.5M");
  EXPECT_EQ(HumanCount(1e11), "100.0B");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, JoinInts) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(JoinInts({}, ","), "");
  EXPECT_EQ(JoinInts({7}, ", "), "7");
}

TEST(StringUtilTest, PadLeft) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilTest, Percent) {
  EXPECT_EQ(Percent(0.875), "87.5%");
  EXPECT_EQ(Percent(0.0), "0.0%");
}

// ------------------------------------------------------------- threading

TEST(BarrierTest, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kThreads = 8;
  constexpr int kGenerations = 50;
  Barrier barrier(kThreads);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        if (barrier.ArriveAndWait()) {
          serial_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_count.load(), kGenerations);
}

TEST(BarrierTest, NoThreadPassesEarly) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> stage{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      stage.fetch_add(1);
      barrier.ArriveAndWait();
      // Everyone must have arrived before anyone continues.
      EXPECT_EQ(stage.load(), kThreads);
    });
  }
  for (auto& t : threads) t.join();
}

// Regression for the serial-thread contract under contention: hammer the
// barrier from N threads for many generations and require (a) exactly one
// serial thread per generation, (b) the serial election is observed
// *within* the generation it belongs to — i.e. between two consecutive
// arrivals of any thread, the global serial count advances by exactly
// one. Run under TSan (scripts/check.sh tsan) this also proves every
// participant's pre-barrier writes are visible to the serial thread,
// which is what the engine's round-serial statistics harvesting relies
// on.
TEST(BarrierTest, SerialThreadContractUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kGenerations = 2000;
  Barrier barrier(kThreads);
  std::atomic<int64_t> serial_count{0};
  // One cell per thread, written by its owner before every arrival and
  // summed by that generation's serial thread. The sums must match
  // exactly: kThreads * generation. Any missed happens-before edge
  // through the barrier shows up as a torn or stale sum (and as a TSan
  // report).
  struct alignas(64) Cell {
    int64_t value = 0;
  };
  std::vector<Cell> cells(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int g = 1; g <= kGenerations; ++g) {
        cells[t].value = g;  // plain write: the barrier must order it
        if (barrier.ArriveAndWait()) {
          serial_count.fetch_add(1, std::memory_order_relaxed);
          int64_t sum = 0;
          for (const Cell& c : cells) sum += c.value;  // plain reads
          EXPECT_EQ(sum, static_cast<int64_t>(kThreads) * g);
        }
        // Second rendezvous parks everyone until the serial thread is
        // done reading, mirroring the engine's round protocol.
        barrier.ArriveAndWait();
        EXPECT_EQ(serial_count.load(std::memory_order_relaxed), g);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_count.load(), kGenerations);
}

TEST(ThreadPoolTest, RunsAllSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(4, 64, [&](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool::ParallelFor(4, 0, [&](int64_t) { FAIL(); });
}

// --------------------------------------------------------------- logging

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ HETGMP_CHECK(1 == 2) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(HETGMP_CHECK_OK(Status::Internal("bad")), "Internal");
}

TEST(LoggingTest, CheckPassesSilently) {
  HETGMP_CHECK(true);
  HETGMP_CHECK_EQ(2 + 2, 4);
  HETGMP_CHECK_LT(1, 2);
  HETGMP_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace hetgmp
