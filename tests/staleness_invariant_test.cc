// Stress test for the §5.3 consistency guarantees: runs the engine with 8
// concurrent workers and asserts — via the StalenessAudit the engine
// records at every embedding Read — that the intra- and inter-embedding
// staleness bounds were never exceeded by a value actually consumed.
//
// The audit is collected inside ResolveFeature (core/engine.cc) against
// the primary clock each admission decision observed, so a broken refresh
// path (skipped refresh, off-by-one bound check, stale synced_clock)
// fails these assertions deterministically even though the workers race.
// Run it under scripts/check.sh tsan to additionally prove the clock and
// row-mutex protocol publishing those values is data-race-free.
#include <gtest/gtest.h>

#include <cstdint>

#include "comm/topology.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/partition.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig EightWorkerData() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 4000;
  cfg.num_fields = 8;
  cfg.num_features = 800;
  cfg.num_clusters = 8;
  cfg.seed = 173;
  return cfg;
}

struct Fixtures {
  Fixtures()
      : train(GenerateSyntheticCtr(EightWorkerData())),
        test(train.SplitTail(0.2)),
        topology(Topology::EightGpuQpi()) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig BoundedConfig(uint64_t s) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.consistency = ConsistencyMode::kGraphBounded;
  cfg.bound.s = s;
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  // Straggler injection: a 3x spread in per-worker compute speed drives
  // the clocks apart, so the bound is actually contested rather than
  // trivially satisfied by lockstep progress.
  cfg.worker_slowdown = {1.0, 1.3, 1.6, 2.0, 1.1, 2.6, 1.4, 3.0};
  return cfg;
}

// Runs training and returns the audit, asserting the run was non-vacuous:
// the partition must contain secondary replicas (otherwise no bounded
// read ever happens and the audit would pass trivially).
StalenessAudit TrainAndAudit(const Fixtures& f, const EngineConfig& cfg,
                             int epochs) {
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  EXPECT_GT(part.TotalSecondaries(), 0);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  TrainResult r = engine.Train(epochs);
  EXPECT_GT(r.total_iterations, 0);
  return r.staleness;
}

TEST(StalenessInvariantTest, ModerateBoundHoldsAtEveryRead) {
  Fixtures f;
  const uint64_t s = 4;
  StalenessAudit audit = TrainAndAudit(f, BoundedConfig(s), /*epochs=*/2);
  EXPECT_LE(audit.max_intra_gap, s);
  EXPECT_LE(audit.max_inter_norm_gap, static_cast<double>(s));
  EXPECT_EQ(audit.inter_violations, 0);
}

TEST(StalenessInvariantTest, MaximalFiniteBoundHoldsAtEveryRead) {
  // A huge-but-finite s admits almost every stale read; the audit must
  // still show every consumed value within the configured bound.
  Fixtures f;
  const uint64_t s = 1u << 20;
  StalenessAudit audit = TrainAndAudit(f, BoundedConfig(s), /*epochs=*/2);
  EXPECT_LE(audit.max_intra_gap, s);
  EXPECT_LE(audit.max_inter_norm_gap, static_cast<double>(s));
  EXPECT_EQ(audit.inter_violations, 0);
}

TEST(StalenessInvariantTest, ZeroBoundForcesFullFreshness) {
  // s = 0 degenerates to sequential consistency per embedding: every
  // secondary read must observe a replica fully caught up with the
  // primary clock it admitted against.
  Fixtures f;
  StalenessAudit audit = TrainAndAudit(f, BoundedConfig(0), /*epochs=*/1);
  EXPECT_EQ(audit.max_intra_gap, 0u);
  EXPECT_DOUBLE_EQ(audit.max_inter_norm_gap, 0.0);
  EXPECT_EQ(audit.inter_violations, 0);
}

TEST(StalenessInvariantTest, BoundSweepNeverViolates) {
  Fixtures f;
  for (uint64_t s : {uint64_t{1}, uint64_t{8}, uint64_t{64}}) {
    StalenessAudit audit = TrainAndAudit(f, BoundedConfig(s), /*epochs=*/1);
    EXPECT_LE(audit.max_intra_gap, s) << "s=" << s;
    EXPECT_LE(audit.max_inter_norm_gap, static_cast<double>(s)) << "s=" << s;
    EXPECT_EQ(audit.inter_violations, 0) << "s=" << s;
  }
}

}  // namespace
}  // namespace hetgmp
