#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/random.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "graph/cooccurrence.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig SmallConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 1500;
  cfg.num_fields = 6;
  cfg.num_features = 400;
  cfg.num_clusters = 4;
  cfg.seed = 11;
  return cfg;
}

// Tiny hand-built dataset: 3 samples, 2 fields, 4 features.
CtrDataset TinyDataset() {
  std::vector<int64_t> offsets = {0, 2, 4};
  // sample 0: features 0, 2; sample 1: features 0, 3; sample 2: 1, 2.
  std::vector<FeatureId> ids = {0, 2, 0, 3, 1, 2};
  return CtrDataset("tiny", 2, offsets, ids, {1.0f, 0.0f, 1.0f});
}

// --------------------------------------------------------------- Bigraph

TEST(BigraphTest, CountsMatchDataset) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  Bigraph g(d);
  EXPECT_EQ(g.num_samples(), d.num_samples());
  EXPECT_EQ(g.num_embeddings(), d.num_features());
  EXPECT_EQ(g.arity(), d.num_fields());
  EXPECT_EQ(g.num_edges(), d.num_samples() * d.num_fields());
}

TEST(BigraphTest, TinyAdjacency) {
  CtrDataset d = TinyDataset();
  Bigraph g(d);
  EXPECT_EQ(g.EmbeddingDegree(0), 2);  // samples 0, 1
  EXPECT_EQ(g.EmbeddingDegree(1), 1);  // sample 2
  EXPECT_EQ(g.EmbeddingDegree(2), 2);  // samples 0, 2
  EXPECT_EQ(g.EmbeddingDegree(3), 1);  // sample 1
  std::set<int64_t> of0(g.EmbeddingNeighbors(0),
                        g.EmbeddingNeighbors(0) + g.EmbeddingDegree(0));
  EXPECT_EQ(of0, (std::set<int64_t>{0, 1}));
}

TEST(BigraphTest, AdjacencyIsInverse) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  Bigraph g(d);
  // Every (sample → embedding) edge appears as (embedding → sample).
  for (int64_t s = 0; s < 50; ++s) {
    const FeatureId* feats = g.SampleNeighbors(s);
    for (int f = 0; f < g.arity(); ++f) {
      const FeatureId x = feats[f];
      bool found = false;
      const int64_t* samples = g.EmbeddingNeighbors(x);
      for (int64_t e = 0; e < g.EmbeddingDegree(x) && !found; ++e) {
        found = samples[e] == s;
      }
      EXPECT_TRUE(found) << "sample " << s << " feature " << x;
    }
  }
}

TEST(BigraphTest, DegreesEqualFrequencies) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  Bigraph g(d);
  const std::vector<int64_t> freq = d.FeatureFrequencies();
  EXPECT_EQ(g.embedding_degrees(), freq);
}

TEST(BigraphTest, DegreeOrderingIsDescending) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  Bigraph g(d);
  const auto order = g.EmbeddingsByDegreeDesc();
  EXPECT_EQ(order.size(), static_cast<size_t>(g.num_embeddings()));
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.EmbeddingDegree(order[i - 1]),
              g.EmbeddingDegree(order[i]));
  }
}

TEST(BigraphTest, AccessFrequenciesSumToOne) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  Bigraph g(d);
  const auto p = g.AccessFrequencies();
  const double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : p) EXPECT_GE(v, 0.0);
}

// --------------------------------------------------------- WeightedGraph

TEST(WeightedGraphTest, BuildsSymmetricCsr) {
  std::vector<std::vector<std::pair<int64_t, double>>> adj(3);
  adj[0] = {{1, 2.0}};
  adj[1] = {{0, 2.0}, {2, 1.0}};
  adj[2] = {{1, 1.0}};
  WeightedGraph g(3, adj);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
  EXPECT_DOUBLE_EQ(g.VertexWeight(1), 3.0);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Neighbors(0)[0].to, 1);
}

TEST(CooccurrenceTest, TinyGraphWeights) {
  CtrDataset d = TinyDataset();
  CooccurrenceOptions opt;
  WeightedGraph g = BuildCooccurrenceGraph(d, opt);
  // Pairs: (0,2) from sample 0, (0,3) from sample 1, (1,2) from sample 2.
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
}

TEST(CooccurrenceTest, SymmetricAdjacency) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  WeightedGraph g = BuildCooccurrenceGraph(d);
  for (int64_t u = 0; u < g.num_vertices(); ++u) {
    for (int64_t e = 0; e < g.Degree(u); ++e) {
      const auto& edge = g.Neighbors(u)[e];
      // Find the reverse edge with equal weight.
      bool found = false;
      for (int64_t e2 = 0; e2 < g.Degree(edge.to) && !found; ++e2) {
        const auto& back = g.Neighbors(edge.to)[e2];
        found = back.to == u && back.weight == edge.weight;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(CooccurrenceTest, PairCapLimitsWork) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  CooccurrenceOptions few;
  few.max_pairs_per_sample = 3;
  CooccurrenceOptions many;
  many.max_pairs_per_sample = 64;
  WeightedGraph gf = BuildCooccurrenceGraph(d, few);
  WeightedGraph gm = BuildCooccurrenceGraph(d, many);
  EXPECT_LT(gf.total_edge_weight(), gm.total_edge_weight());
  // 6 fields → at most 15 pairs per sample.
  EXPECT_DOUBLE_EQ(gm.total_edge_weight(),
                   static_cast<double>(d.num_samples()) * 15);
}

TEST(CooccurrenceTest, MinWeightPrunes) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  CooccurrenceOptions strict;
  strict.min_weight = 5.0;
  WeightedGraph g = BuildCooccurrenceGraph(d, strict);
  for (int64_t u = 0; u < g.num_vertices(); ++u) {
    for (int64_t e = 0; e < g.Degree(u); ++e) {
      EXPECT_GE(g.Neighbors(u)[e].weight, 5.0);
    }
  }
}

TEST(CooccurrenceTest, WithinClusterFractionBounds) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  WeightedGraph g = BuildCooccurrenceGraph(d);
  std::vector<int> all_same(g.num_vertices(), 0);
  EXPECT_DOUBLE_EQ(WithinClusterWeightFraction(g, all_same), 1.0);
  // Random assignment lands near 1/k.
  Rng rng(13);
  std::vector<int> random(g.num_vertices());
  for (auto& c : random) c = static_cast<int>(rng.NextUint64(4));
  const double frac = WithinClusterWeightFraction(g, random);
  EXPECT_NEAR(frac, 0.25, 0.08);
}

TEST(CooccurrenceTest, GeneratorClustersAreVisible) {
  // Assign each embedding to its generator slice cluster; the within-
  // cluster co-occurrence fraction must far exceed the random baseline —
  // this is the locality observation behind Figure 3.
  SyntheticCtrConfig cfg = SmallConfig();
  cfg.cluster_affinity = 0.9;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  WeightedGraph g = BuildCooccurrenceGraph(d);
  std::vector<int> cluster_of(d.num_features());
  for (int f = 0; f < d.num_fields(); ++f) {
    const int64_t lo = d.field_offsets()[f];
    const int64_t hi = d.field_offsets()[f + 1];
    const int64_t slice = std::max<int64_t>(1, (hi - lo) / cfg.num_clusters);
    for (int64_t x = lo; x < hi; ++x) {
      cluster_of[x] = std::min<int>(cfg.num_clusters - 1,
                                    static_cast<int>((x - lo) / slice));
    }
  }
  const double frac = WithinClusterWeightFraction(g, cluster_of);
  EXPECT_GT(frac, 2.0 / cfg.num_clusters);
}

}  // namespace
}  // namespace hetgmp
