// Engine-over-Transport parity and accounting suite (DESIGN.md §5h).
//
// Three contracts are locked in here:
//
//  1. Golden parity: driving Engine::Train's per-round traffic through a
//     Transport (the in-proc mailbox backend) changes NOTHING the engine
//     reports — every RoundStats field, final metric, and staleness audit
//     is bit-identical to a transport-off run, across consistency modes
//     and worker counts. The wire layer replays traffic; it never shapes
//     it.
//
//  2. Accounting equality: the transport endpoints' own payload tallies
//     equal the engine's expected wire bytes byte-for-byte, the private
//     wire Fabric ledger agrees per (src, dst, class), and both relate to
//     the engine's simulated ledger by the closed forms of protocol.h
//     (the ledger charges ids/clocks/rows; the wire adds the typed
//     message headers and the per-row id of embedding blocks).
//
//  3. Cross-process end-to-end: a 2-process SocketFabric training run
//     over loopback TCP reproduces the in-proc trajectory exactly, with
//     zero payload-verification failures, and each rank's sent-tally
//     report equals the corresponding in-proc endpoint's.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/protocol.h"
#include "comm/socket_transport.h"
#include "comm/topology.h"
#include "comm/transport.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "multiproc_driver.h"

namespace hetgmp {
namespace {

using testing_multiproc::MultiProcResult;
using testing_multiproc::RunForkedRanks;

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 91;
  return cfg;
}

// Same tiny workload as the hotpath golden suite, but with a pluggable
// topology: the parity cases cover 1 and 4 workers, the socket case 2.
struct Fixtures {
  explicit Fixtures(Topology topo)
      : train(GenerateSyntheticCtr(TinyConfig())),
        test(train.SplitTail(0.2)),
        topology(std::move(topo)) {}
  CtrDataset train;
  CtrDataset test;
  Topology topology;
};

EngineConfig BaseConfig(ConsistencyMode mode) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.consistency = mode;
  cfg.replica_policy = ReplicaPolicy::kStaticVertexCut;
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  cfg.rounds_per_epoch = 2;
  cfg.bound.s = 1;
  cfg.deterministic = true;
  return cfg;
}

TrainResult RunOnce(EngineConfig cfg, const Fixtures& f, int epochs) {
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  return engine.Train(epochs);
}

// Exact comparison of everything the engine reports (the hotpath golden
// suite's contract, re-stated here for transport-on vs transport-off).
void ExpectIdenticalTrajectories(const TrainResult& ref,
                                 const TrainResult& opt,
                                 const std::string& label) {
  ASSERT_EQ(ref.rounds.size(), opt.rounds.size()) << label;
  for (size_t i = 0; i < ref.rounds.size(); ++i) {
    SCOPED_TRACE(label + " round " + std::to_string(i));
    const RoundStats& a = ref.rounds[i];
    const RoundStats& b = opt.rounds[i];
    EXPECT_EQ(a.iterations_done, b.iterations_done);
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.auc, b.auc);
    EXPECT_EQ(a.sim_time, b.sim_time);
    EXPECT_EQ(a.embedding_bytes, b.embedding_bytes);
    EXPECT_EQ(a.index_clock_bytes, b.index_clock_bytes);
    EXPECT_EQ(a.allreduce_bytes, b.allreduce_bytes);
    EXPECT_EQ(a.remote_fetches, b.remote_fetches);
    EXPECT_EQ(a.intra_refreshes, b.intra_refreshes);
    EXPECT_EQ(a.inter_refreshes, b.inter_refreshes);
    EXPECT_EQ(a.inter_flags, b.inter_flags);
  }
  EXPECT_EQ(ref.final_auc, opt.final_auc) << label;
  EXPECT_EQ(ref.total_sim_time, opt.total_sim_time) << label;
  EXPECT_EQ(ref.total_iterations, opt.total_iterations) << label;
  EXPECT_EQ(ref.samples_processed, opt.samples_processed) << label;
  EXPECT_EQ(ref.staleness.max_intra_gap, opt.staleness.max_intra_gap)
      << label;
  EXPECT_EQ(ref.staleness.max_inter_norm_gap,
            opt.staleness.max_inter_norm_gap)
      << label;
  EXPECT_EQ(ref.staleness.inter_violations, 0) << label;
  EXPECT_EQ(opt.staleness.inter_violations, 0) << label;
}

// Canonical hexfloat rendering of a trajectory: equality of two of these
// strings is bit-identity of every reported metric. Used to compare runs
// across process boundaries, where TrainResult objects can't travel.
std::string TrajectoryString(const TrainResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const RoundStats& s : r.rounds) {
    os << s.round << ' ' << s.iterations_done << ' ' << s.train_loss << ' '
       << s.auc << ' ' << s.sim_time << ' ' << s.embedding_bytes << ' '
       << s.index_clock_bytes << ' ' << s.allreduce_bytes << ' '
       << s.remote_fetches << ' ' << s.intra_refreshes << ' '
       << s.inter_refreshes << ' ' << s.inter_flags << '\n';
  }
  os << "final " << r.final_auc << ' ' << r.total_sim_time << ' '
     << r.total_iterations << ' ' << r.samples_processed << ' '
     << r.staleness.max_intra_gap << ' ' << r.staleness.max_inter_norm_gap
     << ' ' << r.staleness.inter_violations << '\n';
  return os.str();
}

struct ParityCase {
  ConsistencyMode mode;
  int workers;
  const char* name;
};

class EngineTransportParityTest
    : public ::testing::TestWithParam<ParityCase> {};

TEST_P(EngineTransportParityTest, InProcBackendIsTrajectoryInvisible) {
  const ParityCase pc = GetParam();
  Fixtures f(pc.workers == 4 ? Topology::FourGpuPcie()
                             : Topology::ClusterA(pc.workers));
  const EngineConfig base = BaseConfig(pc.mode);

  const TrainResult off = RunOnce(base, f, 2);
  EXPECT_FALSE(off.wire.enabled) << pc.name;
  EXPECT_EQ(off.wire.rounds_exchanged, 0) << pc.name;

  EngineConfig on_cfg = base;
  on_cfg.transport.enabled = true;  // backend defaults to kInProc
  const TrainResult on = RunOnce(on_cfg, f, 2);

  ExpectIdenticalTrajectories(off, on, pc.name);

  EXPECT_TRUE(on.wire.enabled) << pc.name;
  EXPECT_EQ(on.wire.verify_failures, 0) << pc.name;
  EXPECT_EQ(on.wire.rounds_exchanged,
            static_cast<int>(on.rounds.size()))
      << pc.name;
  if (pc.workers > 1) {
    // Guard against a vacuous pass: real messages must have moved.
    EXPECT_GT(on.wire.index_messages, 0) << pc.name;
    EXPECT_GT(on.wire.pushed_rows + on.wire.fetched_rows, 0) << pc.name;
    EXPECT_GT(on.wire.expected_allreduce_bytes, 0u) << pc.name;
  } else {
    // A 1-worker world has no peers and no collective, but the exchange
    // hook still runs every round.
    EXPECT_EQ(on.wire.index_messages, 0) << pc.name;
    EXPECT_EQ(on.wire.expected_index_clock_bytes, 0u) << pc.name;
    EXPECT_EQ(on.wire.expected_embedding_bytes, 0u) << pc.name;
    EXPECT_EQ(on.wire.expected_allreduce_bytes, 0u) << pc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorlds, EngineTransportParityTest,
    ::testing::Values(
        ParityCase{ConsistencyMode::kGraphBounded, 4, "graph_w4"},
        ParityCase{ConsistencyMode::kGraphBounded, 1, "graph_w1"},
        ParityCase{ConsistencyMode::kSsp, 4, "ssp_w4"},
        ParityCase{ConsistencyMode::kSsp, 1, "ssp_w1"},
        ParityCase{ConsistencyMode::kBsp, 4, "bsp_w4"},
        ParityCase{ConsistencyMode::kBsp, 1, "bsp_w1"}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return info.param.name;
    });

// The full accounting chain on a 4-worker in-proc run:
//   endpoint payload tallies == wire_stats expected bytes
//   wire Fabric ledger       == endpoint tallies, per (src, dst, class)
//   engine (simulated) ledger relates to both by protocol.h closed forms.
TEST(EngineTransportTest, TalliesMatchLedgersByteForByte) {
  Fixtures f(Topology::FourGpuPcie());
  EngineConfig cfg = BaseConfig(ConsistencyMode::kGraphBounded);
  cfg.transport.enabled = true;

  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  const TrainResult r = engine.Train(2);
  ASSERT_EQ(r.wire.verify_failures, 0);
  const int N = f.topology.num_workers();

  // (a) Sum of each endpoint's sent-payload tallies, per class, equals
  // the engine's expected wire bytes exactly.
  uint64_t sent_ic = 0, sent_emb = 0, sent_ar = 0, sent_lookup = 0;
  for (int w = 0; w < N; ++w) {
    const Transport* t = engine.wire_endpoint(w);
    ASSERT_NE(t, nullptr) << "endpoint " << w;
    for (int o = 0; o < N; ++o) {
      if (o == w) continue;
      sent_ic += t->SentPayloadBytes(o, TrafficClass::kIndexClock);
      sent_emb += t->SentPayloadBytes(o, TrafficClass::kEmbedding);
      sent_ar += t->SentPayloadBytes(o, TrafficClass::kAllReduce);
      sent_lookup += t->SentPayloadBytes(o, TrafficClass::kLookup);
    }
  }
  EXPECT_EQ(sent_ic, r.wire.expected_index_clock_bytes);
  EXPECT_EQ(sent_emb, r.wire.expected_embedding_bytes);
  EXPECT_EQ(sent_ar, r.wire.expected_allreduce_bytes);
  EXPECT_EQ(sent_lookup, 0u);

  // (b) The private wire Fabric the in-proc backend charges agrees with
  // the endpoints cell by cell — two accountings of one byte stream.
  const Fabric* wire_fab = engine.wire_fabric();
  ASSERT_NE(wire_fab, nullptr);
  for (int w = 0; w < N; ++w) {
    const Transport* t = engine.wire_endpoint(w);
    for (int o = 0; o < N; ++o) {
      if (o == w) continue;
      for (const TrafficClass cls :
           {TrafficClass::kEmbedding, TrafficClass::kIndexClock,
            TrafficClass::kAllReduce}) {
        EXPECT_EQ(wire_fab->PairBytes(w, o, cls),
                  t->SentPayloadBytes(o, cls))
            << "pair " << w << "->" << o << " class "
            << TrafficClassName(cls);
        // Conformance: what o recorded receiving from w is what w sent.
        EXPECT_EQ(engine.wire_endpoint(o)->ReceivedPayloadBytes(w, cls),
                  t->SentPayloadBytes(o, cls))
            << "pair " << w << "->" << o << " class "
            << TrafficClassName(cls);
      }
    }
  }

  // (c) The engine's simulated ledger charges kIdBytes per announced id
  // and kClockBytes per clock comparison (no message framing)...
  const uint64_t ledger_ic =
      engine.fabric().TotalBytes(TrafficClass::kIndexClock);
  EXPECT_EQ(ledger_ic,
            kIdBytes * static_cast<uint64_t>(r.wire.index_entries) +
                kClockBytes * static_cast<uint64_t>(r.wire.clock_entries));
  // ...and RowBytes per fetched/pushed row (ids ride the index class).
  const uint64_t ledger_emb =
      engine.fabric().TotalBytes(TrafficClass::kEmbedding);
  EXPECT_EQ(ledger_emb,
            engine.table().RowBytes() *
                static_cast<uint64_t>(r.wire.pushed_rows +
                                      r.wire.fetched_rows));

  // (d) Wire bytes are the ledger plus exactly the typed framing: one
  // fixed header per message, plus the per-row id each embedding block
  // carries (the ledger books row ids under the index class instead).
  EXPECT_EQ(r.wire.expected_index_clock_bytes,
            ledger_ic + IndexClockWireBytes(0) *
                            static_cast<uint64_t>(r.wire.index_messages));
  EXPECT_EQ(
      r.wire.expected_embedding_bytes,
      ledger_emb +
          kIdBytes *
              static_cast<uint64_t>(r.wire.pushed_rows +
                                    r.wire.fetched_rows) +
          EmbeddingBlockWireBytes(0, cfg.embedding_dim) *
              static_cast<uint64_t>(r.wire.embedding_messages));
}

// Transport-off engines expose no wire machinery at all.
TEST(EngineTransportTest, DisabledTransportExposesNothing) {
  Fixtures f(Topology::FourGpuPcie());
  const EngineConfig cfg = BaseConfig(ConsistencyMode::kGraphBounded);
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  const TrainResult r = engine.Train(1);
  EXPECT_FALSE(r.wire.enabled);
  EXPECT_EQ(engine.wire_fabric(), nullptr);
  EXPECT_EQ(engine.wire_endpoint(0), nullptr);
}

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "hetgmp_engine_XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

// Two real processes, loopback TCP, full training run each (SPMD: every
// process simulates the whole 2-worker world, drives its own rank's
// endpoint). Both must reproduce the in-proc trajectory bit-for-bit,
// verify every received payload, and post sent-tallies identical to the
// corresponding in-proc endpoints'.
TEST(EngineTransportTest, TwoProcessTcpTrainingMatchesInProc) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "fork-based driver is not TSan-compatible";
#endif
  const std::string dir = MakeTempDir();
  constexpr int kWorld = 2;
  constexpr int kEpochs = 2;

  const auto make_cfg = [] {
    return BaseConfig(ConsistencyMode::kGraphBounded);
  };

  const MultiProcResult result = RunForkedRanks(
      kWorld,
      [&dir](int rank, std::string* out) -> int {
        RendezvousOptions opts;
        opts.session_token = "engine-e2e";
        opts.connect_timeout_ms = 20000;
        opts.recv_timeout_ms = 20000;
        Result<std::unique_ptr<SocketFabric>> fab =
            SocketFabric::RendezvousTcp(dir, rank, kWorld, opts);
        if (!fab.ok()) {
          *out = fab.status().ToString();
          return 10;
        }
        Fixtures f(Topology::ClusterA(kWorld));
        EngineConfig cfg = BaseConfig(ConsistencyMode::kGraphBounded);
        cfg.transport.enabled = true;
        cfg.transport.backend =
            EngineConfig::TransportConfig::Backend::kSocket;
        cfg.transport.socket = fab.value().get();
        Bigraph graph(f.train);
        Partition part = BuildPartition(cfg, graph, f.topology);
        Engine engine(cfg, f.train, f.test, f.topology, part);
        const TrainResult r = engine.Train(kEpochs);
        *out = "TRAJ\n" + TrajectoryString(r) + "TALLY\n" +
               fab.value()->SentTallyReport();
        if (r.wire.verify_failures != 0) return 11;
        if (r.wire.rounds_exchanged != static_cast<int>(r.rounds.size())) {
          return 12;
        }
        return 0;
      },
      120000);
  ASSERT_TRUE(result.all_exited_cleanly)
      << result.failure << " rank0: " << result.outputs[0]
      << " rank1: " << result.outputs[1];

  // Reference: the identical workload in-proc (transport on, so the
  // endpoints carry the same per-rank tallies the socket ranks report).
  Fixtures f(Topology::ClusterA(kWorld));
  EngineConfig cfg = make_cfg();
  cfg.transport.enabled = true;
  Bigraph graph(f.train);
  Partition part = BuildPartition(cfg, graph, f.topology);
  Engine engine(cfg, f.train, f.test, f.topology, part);
  const TrainResult ref = engine.Train(kEpochs);
  ASSERT_EQ(ref.wire.verify_failures, 0);
  const std::string want_traj = "TRAJ\n" + TrajectoryString(ref);

  for (int rank = 0; rank < kWorld; ++rank) {
    SCOPED_TRACE("rank " + std::to_string(rank));
    const std::string& got = result.outputs[rank];
    const size_t tally_at = got.find("TALLY\n");
    ASSERT_NE(tally_at, std::string::npos) << got;
    // Trajectory: every process's simulation of the whole world agrees
    // with the single-process run to the last bit.
    EXPECT_EQ(got.substr(0, tally_at), want_traj);
    // Tallies: the bytes rank r physically sent over TCP equal what the
    // in-proc mailbox endpoint of the same rank sent.
    EXPECT_EQ(got.substr(tally_at + 6),
              engine.wire_endpoint(rank)->SentTallyReport());
  }
}

}  // namespace
}  // namespace hetgmp
