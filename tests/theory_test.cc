#include <gtest/gtest.h>

#include <cmath>

#include "theory/theorem1.h"

namespace hetgmp {
namespace {

Theorem1Config BaseConfig() {
  Theorem1Config cfg;
  cfg.dim = 48;
  cfg.num_samples = 192;
  cfg.coords_per_sample = 5;
  cfg.num_workers = 8;
  cfg.staleness = 4;
  cfg.steps = 6000;
  cfg.seed = 99;
  return cfg;
}

TEST(Theorem1Test, ConvergesAtTheoremStepSize) {
  Theorem1Result r = RunTheorem1(BaseConfig());
  EXPECT_GT(r.lipschitz, 0.0);
  EXPECT_GT(r.step_size, 0.0);
  // Objective driven near its minimum (F_inf = 0 by construction).
  EXPECT_LT(r.final_objective, 1e-3);
}

TEST(Theorem1Test, StepNormSeriesIsSummable) {
  // Eq. (7): Σ ||x(t+1) − x(t)|| < ∞ — numerically, the last 10% of steps
  // contribute a vanishing share of the partial sum.
  Theorem1Result r = RunTheorem1(BaseConfig());
  EXPECT_GT(r.sum_step_norms, 0.0);
  EXPECT_LT(r.tail_mass_fraction, 0.02);
}

TEST(Theorem1Test, AverageIterateRateIsAtLeastOneOverT) {
  // Eq. (9): F(mean iterate) − F_inf ≤ O(1/t). The fitted log-log slope
  // must certify decay at least as fast as 1/t.
  Theorem1Result r = RunTheorem1(BaseConfig());
  ASSERT_GE(r.avg_iterate_gap.size(), 4u);
  EXPECT_LT(r.rate_exponent, -0.9);
  // And the gap sequence actually decreases end to end.
  EXPECT_LT(r.avg_iterate_gap.back(), r.avg_iterate_gap.front() * 0.01);
}

TEST(Theorem1Test, GapSamplesArePositions) {
  Theorem1Result r = RunTheorem1(BaseConfig());
  ASSERT_EQ(r.avg_iterate_gap.size(), r.gap_steps.size());
  for (size_t i = 1; i < r.gap_steps.size(); ++i) {
    EXPECT_GT(r.gap_steps[i], r.gap_steps[i - 1]);
  }
  EXPECT_EQ(r.gap_steps.back(), 6000);
}

TEST(Theorem1Test, ZeroStalenessAlsoConverges) {
  Theorem1Config cfg = BaseConfig();
  cfg.staleness = 0;
  Theorem1Result r = RunTheorem1(cfg);
  EXPECT_LT(r.final_objective, 1e-3);
}

TEST(Theorem1Test, StalenessShrinksTheoremStepSize) {
  // η_max = 0.9 / (L(1+2√(ps))) decreases in s.
  Theorem1Config fresh = BaseConfig();
  fresh.staleness = 0;
  Theorem1Config stale = BaseConfig();
  stale.staleness = 16;
  const Theorem1Result rf = RunTheorem1(fresh);
  const Theorem1Result rs = RunTheorem1(stale);
  EXPECT_GT(rf.step_size, rs.step_size * 2);
}

TEST(Theorem1Test, DeterministicForSeed) {
  const Theorem1Result a = RunTheorem1(BaseConfig());
  const Theorem1Result b = RunTheorem1(BaseConfig());
  EXPECT_EQ(a.final_objective, b.final_objective);
  EXPECT_EQ(a.sum_step_norms, b.sum_step_norms);
}

TEST(Theorem1Test, ExplicitStepSizeIsUsed) {
  Theorem1Config cfg = BaseConfig();
  cfg.step_size = 1e-4;
  const Theorem1Result r = RunTheorem1(cfg);
  EXPECT_DOUBLE_EQ(r.step_size, 1e-4);
}

// Sweep: convergence holds across the (p, s) grid the theorem covers.
class Theorem1Sweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(Theorem1Sweep, Converges) {
  const auto [workers, staleness] = GetParam();
  Theorem1Config cfg = BaseConfig();
  cfg.num_workers = workers;
  cfg.staleness = staleness;
  Theorem1Result r = RunTheorem1(cfg);
  EXPECT_LT(r.final_objective, 5e-3)
      << "p=" << workers << " s=" << staleness;
  EXPECT_LT(r.tail_mass_fraction, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem1Sweep,
    ::testing::Combine(::testing::Values(1, 4, 16),
                       ::testing::Values(uint64_t{0}, uint64_t{2},
                                         uint64_t{8})));

}  // namespace
}  // namespace hetgmp
