# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/common_test[1]_include.cmake")
include("/root/repo/tests/tensor_test[1]_include.cmake")
include("/root/repo/tests/nn_test[1]_include.cmake")
include("/root/repo/tests/data_test[1]_include.cmake")
include("/root/repo/tests/graph_test[1]_include.cmake")
include("/root/repo/tests/partition_test[1]_include.cmake")
include("/root/repo/tests/partition_parallel_test[1]_include.cmake")
include("/root/repo/tests/multilevel_test[1]_include.cmake")
include("/root/repo/tests/comm_test[1]_include.cmake")
include("/root/repo/tests/sync_test[1]_include.cmake")
include("/root/repo/tests/embed_test[1]_include.cmake")
include("/root/repo/tests/models_test[1]_include.cmake")
include("/root/repo/tests/metrics_test[1]_include.cmake")
include("/root/repo/tests/engine_test[1]_include.cmake")
include("/root/repo/tests/engine_features_test[1]_include.cmake")
include("/root/repo/tests/hotpath_golden_test[1]_include.cmake")
include("/root/repo/tests/integration_test[1]_include.cmake")
include("/root/repo/tests/theory_test[1]_include.cmake")
include("/root/repo/tests/io_test[1]_include.cmake")
include("/root/repo/tests/lru_cache_test[1]_include.cmake")
include("/root/repo/tests/runner_test[1]_include.cmake")
include("/root/repo/tests/deepfm_test[1]_include.cmake")
include("/root/repo/tests/partition_io_test[1]_include.cmake")
include("/root/repo/tests/property_test[1]_include.cmake")
include("/root/repo/tests/staleness_invariant_test[1]_include.cmake")
include("/root/repo/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/tests/serve_test[1]_include.cmake")
