// Backend-parameterized transport conformance suite (DESIGN.md §5g): one
// test body per behavior, run against the in-process mailbox backend and
// the socket backend, plus fork-based multi-process end-to-end runs of
// the §6 training exchange over the socket backend.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/allreduce.h"
#include "comm/fabric.h"
#include "comm/fault_transport.h"
#include "comm/protocol.h"
#include "comm/socket_transport.h"
#include "comm/transport.h"
#include "comm/wire.h"
#include "multiproc_driver.h"
#include "tensor/tensor.h"

namespace hetgmp {
namespace {

using testing_multiproc::MultiProcResult;
using testing_multiproc::RunForkedMeshRanks;
using testing_multiproc::RunForkedRanks;

enum class Backend { kInProc, kSocket };

const char* BackendName(Backend b) {
  return b == Backend::kInProc ? "inproc" : "socket";
}

// An N-rank world of one backend living in a single process (socket
// ranks ride on socketpairs and are driven by threads).
struct World {
  std::unique_ptr<InProcTransportGroup> group;
  std::vector<std::unique_ptr<SocketFabric>> socks;
  std::vector<Transport*> ep;

  Transport* operator[](int r) const { return ep[r]; }
};

World MakeWorld(Backend backend, int n, TransportOptions opts = {},
                Fabric* fabric = nullptr) {
  World w;
  if (backend == Backend::kInProc) {
    w.group = std::make_unique<InProcTransportGroup>(n, fabric, opts);
    for (int r = 0; r < n; ++r) w.ep.push_back(w.group->endpoint(r));
  } else {
    Result<std::vector<std::vector<int>>> mesh =
        SocketFabric::CreateLocalMesh(n);
    EXPECT_TRUE(mesh.ok()) << mesh.status().ToString();
    for (int r = 0; r < n; ++r) {
      w.socks.push_back(SocketFabric::FromFds(r, n, mesh.value()[r], opts));
      w.ep.push_back(w.socks.back().get());
    }
  }
  return w;
}

class TransportConformanceTest : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values(Backend::kInProc,
                                           Backend::kSocket),
                         [](const auto& info) {
                           return std::string(BackendName(info.param));
                         });

TEST_P(TransportConformanceTest, IdentityAndPeerValidation) {
  World w = MakeWorld(GetParam(), 2);
  EXPECT_STREQ(w[0]->backend_name(), BackendName(GetParam()));
  EXPECT_EQ(w[0]->rank(), 0);
  EXPECT_EQ(w[1]->rank(), 1);
  EXPECT_EQ(w[0]->world_size(), 2);

  const char byte = 'x';
  std::vector<uint8_t> payload;
  EXPECT_EQ(w[0]->Send(0, TrafficClass::kEmbedding, 0, &byte, 1).code(),
            StatusCode::kInvalidArgument);  // self-send
  EXPECT_EQ(w[0]->Send(2, TrafficClass::kEmbedding, 0, &byte, 1).code(),
            StatusCode::kInvalidArgument);  // out of world
  EXPECT_EQ(w[0]->Recv(-1, TrafficClass::kEmbedding, 0, &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(TransportConformanceTest, PerPairSameTagIsFifo) {
  World w = MakeWorld(GetParam(), 2);
  for (uint32_t i = 0; i < 10; ++i) {
    const uint32_t v = 100 + i;
    ASSERT_TRUE(
        w[0]->Send(1, TrafficClass::kEmbedding, 7, &v, sizeof(v)).ok());
  }
  for (uint32_t i = 0; i < 10; ++i) {
    std::vector<uint8_t> payload;
    ASSERT_TRUE(w[1]->Recv(0, TrafficClass::kEmbedding, 7, &payload).ok());
    ASSERT_EQ(payload.size(), sizeof(uint32_t));
    uint32_t v = 0;
    std::memcpy(&v, payload.data(), sizeof(v));
    EXPECT_EQ(v, 100 + i) << "frames reordered within one (src,cls,tag)";
  }
}

TEST_P(TransportConformanceTest, TagAndClassMatchingClaimsOutOfOrder) {
  World w = MakeWorld(GetParam(), 2);
  const char a = 'a', b = 'b', c = 'c';
  ASSERT_TRUE(w[0]->Send(1, TrafficClass::kEmbedding, 1, &a, 1).ok());
  ASSERT_TRUE(w[0]->Send(1, TrafficClass::kEmbedding, 2, &b, 1).ok());
  ASSERT_TRUE(w[0]->Send(1, TrafficClass::kIndexClock, 1, &c, 1).ok());

  std::vector<uint8_t> payload;
  // Claim in the reverse of arrival order: MPI-style matching, not FIFO
  // across tags/classes.
  ASSERT_TRUE(w[1]->Recv(0, TrafficClass::kIndexClock, 1, &payload).ok());
  EXPECT_EQ(payload[0], 'c');
  ASSERT_TRUE(w[1]->Recv(0, TrafficClass::kEmbedding, 2, &payload).ok());
  EXPECT_EQ(payload[0], 'b');
  ASSERT_TRUE(w[1]->Recv(0, TrafficClass::kEmbedding, 1, &payload).ok());
  EXPECT_EQ(payload[0], 'a');
}

TEST_P(TransportConformanceTest, RecvTimesOutWithDeadlineExceeded) {
  TransportOptions opts;
  opts.recv_timeout_ms = 150;
  World w = MakeWorld(GetParam(), 2, opts);
  std::vector<uint8_t> payload;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = w[1]->Recv(0, TrafficClass::kEmbedding, 3, &payload);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_LT(elapsed.count(), 5000) << "timeout wildly overshot";
}

TEST_P(TransportConformanceTest, TypedIndexClockRoundTrip) {
  World w = MakeWorld(GetParam(), 2);
  IndexClockMsg sent;
  sent.ids = {3, 1, 4, 1, 5, 92, 65358979LL};
  sent.clock = 0xDEADBEEFCAFEULL;
  ASSERT_TRUE(SendIndexClock(w[0], 1, 11, sent).ok());
  IndexClockMsg got;
  ASSERT_TRUE(RecvIndexClock(w[1], 0, 11, &got).ok());
  EXPECT_EQ(got.ids, sent.ids);
  EXPECT_EQ(got.clock, sent.clock);
}

TEST_P(TransportConformanceTest, SymmetricIndexClockThenEmbeddingExchange) {
  World w = MakeWorld(GetParam(), 2);
  // Each rank's view of the §6 exchange, run concurrently like the
  // engine's round loop would.
  auto run_rank = [&](int r, IndexClockMsg* peer_ic,
                      EmbeddingBlockMsg* peer_eb, Status* st) {
    IndexClockMsg ic;
    ic.ids = {10 + r, 20 + r};
    ic.clock = 5 + static_cast<uint64_t>(r);
    EmbeddingBlockMsg eb;
    eb.dim = 2;
    eb.ids = {100 + r};
    eb.values = {1.5f * static_cast<float>(r + 1), -2.0f};
    *st = ExchangeIndexClockThenEmbeddings(w[r], 1 - r, 42, ic, eb, peer_ic,
                                           peer_eb);
  };
  IndexClockMsg ic0, ic1;
  EmbeddingBlockMsg eb0, eb1;
  Status st0, st1;
  std::thread t1([&] { run_rank(1, &ic1, &eb1, &st1); });
  run_rank(0, &ic0, &eb0, &st0);
  t1.join();
  ASSERT_TRUE(st0.ok()) << st0.ToString();
  ASSERT_TRUE(st1.ok()) << st1.ToString();
  EXPECT_EQ(ic0.ids, (std::vector<FeatureId>{11, 21}));  // rank0 sees rank1
  EXPECT_EQ(ic0.clock, 6u);
  EXPECT_EQ(ic1.ids, (std::vector<FeatureId>{10, 20}));
  EXPECT_EQ(eb0.ids, (std::vector<FeatureId>{101}));
  EXPECT_FLOAT_EQ(eb0.values[0], 3.0f);
  EXPECT_FLOAT_EQ(eb1.values[0], 1.5f);
}

TEST_P(TransportConformanceTest, RingAllReduceAveragesAcrossRanks) {
  const int n = 3;
  const int64_t len = 12;  // divisible by n: chunk rounding exact
  World w = MakeWorld(GetParam(), n);

  std::vector<Tensor> tensors;
  tensors.reserve(n);
  for (int r = 0; r < n; ++r) {
    Tensor t({len});
    for (int64_t i = 0; i < len; ++i) {
      t.data()[i] = static_cast<float>(r * 100 + i);
    }
    tensors.push_back(std::move(t));
  }

  std::vector<Status> st(n);
  std::vector<std::thread> threads;
  for (int r = 1; r < n; ++r) {
    threads.emplace_back([&, r] {
      std::vector<Tensor*> mine = {&tensors[r]};
      st[r] = TransportAllReduceAverage(w[r], mine);
    });
  }
  std::vector<Tensor*> mine = {&tensors[0]};
  st[0] = TransportAllReduceAverage(w[0], mine);
  for (auto& t : threads) t.join();

  for (int r = 0; r < n; ++r) {
    ASSERT_TRUE(st[r].ok()) << "rank " << r << ": " << st[r].ToString();
  }
  // avg over r of (r*100 + i) = 100 + i for n = 3.
  for (int r = 0; r < n; ++r) {
    for (int64_t i = 0; i < len; ++i) {
      EXPECT_NEAR(tensors[r].data()[i], 100.0f + static_cast<float>(i),
                  1e-4)
          << "rank " << r << " element " << i;
    }
  }
  // Per-rank AllReduce payload bytes match the analytical formula the
  // simulator charges (allreduce.h), since len divides evenly.
  const uint64_t expect =
      RingAllReduceBytesPerWorker(n, static_cast<uint64_t>(len) * 4);
  for (int r = 0; r < n; ++r) {
    uint64_t sent = 0;
    for (int d = 0; d < n; ++d) {
      sent += w[r]->SentPayloadBytes(d, TrafficClass::kAllReduce);
    }
    EXPECT_EQ(sent, expect) << "rank " << r;
  }
}

// Scripted traffic used for cross-backend accounting parity.
void RunAccountingScript(const World& w) {
  std::vector<uint8_t> buf(1000, 0xAB);
  ASSERT_TRUE(
      w[0]->Send(1, TrafficClass::kEmbedding, 1, buf.data(), 1000).ok());
  ASSERT_TRUE(
      w[0]->Send(2, TrafficClass::kIndexClock, 2, buf.data(), 500).ok());
  ASSERT_TRUE(
      w[1]->Send(2, TrafficClass::kAllReduce, 3, buf.data(), 250).ok());
  ASSERT_TRUE(w[2]->Send(0, TrafficClass::kLookup, 4, buf.data(), 125).ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(w[1]->Recv(0, TrafficClass::kEmbedding, 1, &payload).ok());
  ASSERT_TRUE(w[2]->Recv(0, TrafficClass::kIndexClock, 2, &payload).ok());
  ASSERT_TRUE(w[2]->Recv(1, TrafficClass::kAllReduce, 3, &payload).ok());
  ASSERT_TRUE(w[0]->Recv(2, TrafficClass::kLookup, 4, &payload).ok());
}

std::string WorldTallies(const World& w, int n) {
  std::string all;
  for (int r = 0; r < n; ++r) all += w[r]->SentTallyReport();
  return all;
}

TEST(TransportAccountingParity, TalliesIdenticalAcrossBackends) {
  World in = MakeWorld(Backend::kInProc, 3);
  World so = MakeWorld(Backend::kSocket, 3);
  RunAccountingScript(in);
  RunAccountingScript(so);
  const std::string a = WorldTallies(in, 3);
  const std::string b = WorldTallies(so, 3);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "backends disagree on (src,dst,class) payload bytes";
  // Receive-side tallies agree with send-side for delivered frames.
  EXPECT_EQ(in[1]->ReceivedPayloadBytes(0, TrafficClass::kEmbedding),
            so[1]->ReceivedPayloadBytes(0, TrafficClass::kEmbedding));
  EXPECT_EQ(so[1]->ReceivedPayloadBytes(0, TrafficClass::kEmbedding), 1000u);
}

TEST(TransportAccountingParity, InProcChargesTheFabricLedger) {
  const Topology topo = Topology::ClusterA(3);
  Fabric fabric(topo);
  World w;
  w.group = std::make_unique<InProcTransportGroup>(3, &fabric);
  for (int r = 0; r < 3; ++r) w.ep.push_back(w.group->endpoint(r));
  RunAccountingScript(w);
  // Every Send landed in the simulator's ledger under the same class.
  EXPECT_EQ(fabric.PairBytes(0, 1, TrafficClass::kEmbedding), 1000u);
  EXPECT_EQ(fabric.PairBytes(0, 2, TrafficClass::kIndexClock), 500u);
  EXPECT_EQ(fabric.PairBytes(1, 2, TrafficClass::kAllReduce), 250u);
  EXPECT_EQ(fabric.PairBytes(2, 0, TrafficClass::kLookup), 125u);
  EXPECT_EQ(fabric.PairBytes(0, 1, TrafficClass::kEmbedding),
            w[0]->SentPayloadBytes(1, TrafficClass::kEmbedding));
}

TEST(SocketTransportTest, PeerDeathSurfacesAsUnavailable) {
  TransportOptions opts;
  opts.recv_timeout_ms = 3000;
  World w = MakeWorld(Backend::kSocket, 2, opts);
  w.socks[0].reset();  // rank 0 dies: its fds close
  std::vector<uint8_t> payload;
  const Status st = w.ep[1]->Recv(0, TrafficClass::kEmbedding, 0, &payload);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
}

// ---------------------------------------------------------------------------
// Multi-process: the fork driver, mesh and TCP-rendezvous variants.

// One §6-shaped training exchange: symmetric index+clock-then-embedding
// round with the peer, then a dense ring AllReduce. Returns 0 on
// success; nonzero codes identify the failing stage for the parent.
int TrainingExchangeBody(int rank, Transport* t, std::string* out) {
  IndexClockMsg ic;
  ic.ids = {1000 + rank, 2000 + rank};
  ic.clock = 7;
  EmbeddingBlockMsg eb;
  eb.dim = 4;
  eb.ids = {500 + rank};
  eb.values = {0.f, 1.f, 2.f, static_cast<float>(rank)};
  IndexClockMsg peer_ic;
  EmbeddingBlockMsg peer_eb;
  const int peer = 1 - rank;
  if (!ExchangeIndexClockThenEmbeddings(t, peer, 1, ic, eb, &peer_ic,
                                        &peer_eb)
           .ok()) {
    return 2;
  }
  if (peer_ic.ids != std::vector<FeatureId>{1000 + peer, 2000 + peer}) {
    return 3;
  }
  if (peer_eb.values.size() != 4 ||
      peer_eb.values[3] != static_cast<float>(peer)) {
    return 4;
  }

  Tensor dense({8});
  for (int64_t i = 0; i < 8; ++i) {
    dense.data()[i] = static_cast<float>(rank * 10 + i);
  }
  std::vector<Tensor*> tensors = {&dense};
  if (!TransportAllReduceAverage(t, tensors).ok()) return 5;
  for (int64_t i = 0; i < 8; ++i) {
    // avg over ranks {0,1} of (rank*10 + i) = 5 + i.
    if (std::abs(dense.data()[i] - (5.0f + static_cast<float>(i))) > 1e-4) {
      return 6;
    }
  }
  *out = t->SentTallyReport();
  return 0;
}

TEST(MultiProcSocketTest, MeshTrainingExchangeEndToEnd) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "fork-based driver is not TSan-compatible";
#endif
  const MultiProcResult result = RunForkedMeshRanks(2, TrainingExchangeBody);
  ASSERT_TRUE(result.all_exited_cleanly) << result.failure;

  // Cross-backend parity: the identical protocol body over the in-proc
  // backend must produce byte-for-byte identical sender tallies.
  World w = MakeWorld(Backend::kInProc, 2);
  std::string out0, out1;
  int code1 = -1;
  std::thread t1(
      [&] { code1 = TrainingExchangeBody(1, w[1], &out1); });
  const int code0 = TrainingExchangeBody(0, w[0], &out0);
  t1.join();
  ASSERT_EQ(code0, 0);
  ASSERT_EQ(code1, 0);
  EXPECT_EQ(result.outputs[0], out0)
      << "rank 0 tallies diverge between socket processes and in-proc";
  EXPECT_EQ(result.outputs[1], out1)
      << "rank 1 tallies diverge between socket processes and in-proc";
}

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "hetgmp_rdzv_XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

TEST(MultiProcSocketTest, TcpRendezvousTrainingExchangeWithInjectedFault) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "fork-based driver is not TSan-compatible";
#endif
  const std::string dir = MakeTempDir();
  const MultiProcResult result = RunForkedRanks(
      2,
      [&dir](int rank, std::string* out) -> int {
        RendezvousOptions opts;
        opts.session_token = "tcp-e2e";
        opts.connect_timeout_ms = 15000;
        opts.recv_timeout_ms = 1200;
        Result<std::unique_ptr<SocketFabric>> t =
            SocketFabric::RendezvousTcp(dir, rank, 2, opts);
        if (!t.ok()) {
          *out = t.status().ToString();
          return 10;
        }
        const int code = TrainingExchangeBody(rank, t.value().get(), out);
        if (code != 0) return code;

        // Injected-fault schedule: rank 0 "sends" round-99 index frames
        // through a drop-everything wrapper; rank 1's matching Recv must
        // surface a clean kDeadlineExceeded — not a hang, not an abort.
        if (rank == 0) {
          FaultOptions fopts;
          fopts.seed = 99;
          fopts.drop_prob = 1.0;
          FaultyTransport faulty(t.value().get(), fopts);
          IndexClockMsg ic;
          ic.ids = {1, 2, 3};
          const Status st = SendIndexClock(&faulty, 1, 99, ic);
          if (!st.ok()) return 20;
          if (faulty.injected().empty()) return 21;
          // Stay alive long enough for the peer's deadline to elapse
          // (exiting early would turn the drop into peer-death).
          ::usleep(1500 * 1000);
        } else {
          IndexClockMsg ic;
          const Status st = RecvIndexClock(t.value().get(), 0, 99, &ic);
          if (st.code() != StatusCode::kDeadlineExceeded) {
            *out += " fault recv: " + st.ToString();
            return 22;
          }
        }
        return 0;
      },
      30000);
  ASSERT_TRUE(result.all_exited_cleanly)
      << result.failure << " rank0: " << result.outputs[0]
      << " rank1: " << result.outputs[1];
}

TEST(RendezvousTest, StaleFileIsRetriedUntilDeadlineThenSurfaced) {
  const std::string dir = MakeTempDir();
  // A leftover from a previous (dead) session that nobody overwrites.
  ASSERT_TRUE(PublishRendezvousFile(
                  dir + "/hetgmp_rank0.addr",
                  RenderRendezvousFile("dead-session", 2, 0, 12345))
                  .ok());
  RendezvousOptions opts;
  opts.session_token = "fresh-session";
  opts.connect_timeout_ms = 400;
  const auto t0 = std::chrono::steady_clock::now();
  Result<std::unique_ptr<SocketFabric>> r =
      SocketFabric::RendezvousTcp(dir, 1, 2, opts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_FALSE(r.ok());
  // The stale diagnosis (not a bare timeout) is what surfaces...
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("stale"), std::string::npos);
  // ...but only after the deadline gave a fresh publish every chance to
  // atomically replace the leftover (the old fail-fast behavior locked
  // out every world launched after an unclean shutdown).
  EXPECT_GE(elapsed.count(), 350);
  // The failed attempt must not leave rank 1's own file behind either.
  EXPECT_EQ(::access((dir + "/hetgmp_rank1.addr").c_str(), F_OK), -1);
}

TEST(RendezvousTest, FreshPublishOverwritesLeftoverMidRetry) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "fork-based driver is not TSan-compatible";
#endif
  const std::string dir = MakeTempDir();
  // Leftover rank-0 file from a dead session. Rank 1 starts retrying
  // against it; the fresh rank 0 publishes ~150ms later, atomically
  // replacing the leftover, and the world must connect.
  ASSERT_TRUE(PublishRendezvousFile(
                  dir + "/hetgmp_rank0.addr",
                  RenderRendezvousFile("dead-session", 2, 0, 12345))
                  .ok());
  const MultiProcResult result = RunForkedRanks(
      2,
      [&dir](int rank, std::string* out) -> int {
        if (rank == 0) ::usleep(150 * 1000);
        RendezvousOptions opts;
        opts.session_token = "fresh-session";
        opts.connect_timeout_ms = 15000;
        opts.recv_timeout_ms = 5000;
        Result<std::unique_ptr<SocketFabric>> t =
            SocketFabric::RendezvousTcp(dir, rank, 2, opts);
        if (!t.ok()) {
          *out = t.status().ToString();
          return 10;
        }
        return TrainingExchangeBody(rank, t.value().get(), out);
      },
      30000);
  ASSERT_TRUE(result.all_exited_cleanly)
      << result.failure << " rank0: " << result.outputs[0]
      << " rank1: " << result.outputs[1];
}

TEST(RendezvousTest, ConsecutiveWorldsShareOneDirectory) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "fork-based driver is not TSan-compatible";
#endif
  const std::string dir = MakeTempDir();
  // Two full TCP worlds back to back in the same directory, different
  // session tokens. Before the unlink-on-success fix the second world
  // found the first world's address files and failed fast as stale.
  for (int world_idx = 0; world_idx < 2; ++world_idx) {
    const std::string token = "world-" + std::to_string(world_idx);
    const MultiProcResult result = RunForkedRanks(
        2,
        [&dir, &token](int rank, std::string* out) -> int {
          RendezvousOptions opts;
          opts.session_token = token;
          opts.connect_timeout_ms = 15000;
          opts.recv_timeout_ms = 5000;
          Result<std::unique_ptr<SocketFabric>> t =
              SocketFabric::RendezvousTcp(dir, rank, 2, opts);
          if (!t.ok()) {
            *out = t.status().ToString();
            return 10;
          }
          return TrainingExchangeBody(rank, t.value().get(), out);
        },
        30000);
    ASSERT_TRUE(result.all_exited_cleanly)
        << "world " << world_idx << ": " << result.failure
        << " rank0: " << result.outputs[0]
        << " rank1: " << result.outputs[1];
    // Successful completion unlinks every published address file.
    EXPECT_EQ(::access((dir + "/hetgmp_rank0.addr").c_str(), F_OK), -1)
        << "world " << world_idx << " left rank 0's address file behind";
    EXPECT_EQ(::access((dir + "/hetgmp_rank1.addr").c_str(), F_OK), -1)
        << "world " << world_idx << " left rank 1's address file behind";
  }
}

TEST(RendezvousTest, PublishIsAtomicAndRoundTrips) {
  const std::string dir = MakeTempDir();
  const std::string path = dir + "/hetgmp_rank0.addr";
  const std::string body = RenderRendezvousFile("tok", 4, 0, 4242);
  ASSERT_TRUE(PublishRendezvousFile(path, body).ok());
  EXPECT_NE(::access(path.c_str(), F_OK), -1);
  EXPECT_EQ(::access((path + ".tmp").c_str(), F_OK), -1)
      << "tmp file left behind after rename";

  int port = 0;
  ASSERT_TRUE(ParseRendezvousFile(body, "tok", 4, 0, &port).ok());
  EXPECT_EQ(port, 4242);
  // Every mismatch dimension is stale, not retryable.
  EXPECT_EQ(ParseRendezvousFile(body, "other", 4, 0, &port).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ParseRendezvousFile(body, "tok", 8, 0, &port).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ParseRendezvousFile(body, "tok", 4, 1, &port).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ParseRendezvousFile("garbage\n", "tok", 4, 0, &port).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hetgmp
