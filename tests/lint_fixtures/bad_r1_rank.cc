// Lint fixture: R1 lock-rank violations. Never compiled — only fed to
// hetgmp_lint by lint_test.cc, which asserts each seeded violation is
// flagged.

#include "common/thread_annotations.h"

namespace hetgmp {

class WrongOrder {
 public:
  // Rank inversion: kServeShard (40) is acquired first, then kBatcher
  // (10) — ranks must strictly increase inward.
  void Inverted() {
    MutexLock outer(&shard_mu_);
    MutexLock inner(&batch_mu_);  // R1: 10 under 40
  }

  // A leaf mutex is held across another acquisition: leaves must be
  // innermost.
  void UnderLeaf() {
    MutexLock leaf(&pool_mu_);
    MutexLock any(&batch_mu_);  // R1: anything under a leaf
  }

 private:
  Mutex batch_mu_{lock_rank::kBatcher};
  Mutex shard_mu_{lock_rank::kServeShard};
  Mutex pool_mu_{lock_rank::kLeaf};
};

}  // namespace hetgmp
