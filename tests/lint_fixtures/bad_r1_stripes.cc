// Lint fixture: R1 — two EmbeddingTable stripe locks in one scope.
// Equal-rank stripe mutexes must never nest: with 64 stripes, two rows
// can hash to the same stripe and self-deadlock.

#include "common/thread_annotations.h"
#include "embed/embedding_table.h"

namespace hetgmp {

void SwapRows(EmbeddingTable* table, int64_t a, int64_t b) {
  MutexLock la(&table->RowMutex(a));
  MutexLock lb(&table->RowMutex(b));  // R1: second stripe in scope
}

}  // namespace hetgmp
