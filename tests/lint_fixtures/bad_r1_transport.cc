// Lint fixture: R1 violations against the ISSUE 8 transport ranks
// (kCommConn=56, kCommMailbox=58). Never compiled — only fed to
// hetgmp_lint by lint_test.cc.

#include "common/thread_annotations.h"

namespace hetgmp {

class WrongTransportOrder {
 public:
  // The legal nesting is socket connection (56) -> in-proc mailbox (58):
  // a hybrid endpoint may park a received frame into a mailbox while its
  // connection is locked, never the reverse. Taking the connection mutex
  // inside a mailbox inverts it.
  void ConnUnderMailboxInverted() {
    MutexLock outer(&mailbox_mu_);
    MutexLock inner(&conn_mu_);  // R1: 56 under 58
  }

  // Transport sits above the cold tier (54): a cold-tier flush may send,
  // but the transport must never re-enter storage while a connection is
  // locked.
  void ColdUnderConnInverted() {
    MutexLock conn(&conn_mu_);
    MutexLock cold(&cold_mu_);  // R1: 54 under 56
  }

 private:
  Mutex conn_mu_{lock_rank::kCommConn};
  Mutex mailbox_mu_{lock_rank::kCommMailbox};
  Mutex cold_mu_{lock_rank::kStoreCold};
};

}  // namespace hetgmp
