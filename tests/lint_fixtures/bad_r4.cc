// Lint fixture: R4 — allocations inside a HETGMP_HOT_PATH function.

#include <memory>
#include <vector>

#include "common/lint_tags.h"

namespace hetgmp {

HETGMP_HOT_PATH void GatherRows(const float* src, float* dst, int64_t n) {
  std::vector<float> scratch(static_cast<size_t>(n));  // R4: sized local
  auto owner = std::make_unique<float[]>(n);           // R4: make_unique
  float* raw = new float[n];                           // R4: new
  (void)src;
  (void)dst;
  (void)raw;
  (void)owner;
  (void)scratch;
}

}  // namespace hetgmp
