// Lint fixture: the compliant twin of the bad_* files — every rule's
// pattern done right (correct rank order, annotations or waivers, charged
// transfers, allocation-free hot path, order-independent accumulation).
// lint_test.cc asserts this file produces zero findings.

#include <cstdint>
#include <vector>

#include "comm/fabric.h"
#include "common/lint_tags.h"
#include "common/thread_annotations.h"
#include "embed/embedding_table.h"

namespace hetgmp {

class GoodCounters {
 public:
  void Bump() {
    MutexLock batch(&batch_mu_);
    MutexLock shard(&shard_mu_);  // 10 then 40: strictly increasing
    ++hits_;
  }

 private:
  Mutex batch_mu_{lock_rank::kBatcher};
  Mutex shard_mu_{lock_rank::kServeShard};
  int64_t hits_ HETGMP_GUARDED_BY(batch_mu_) = 0;
  // lint: unguarded(written once at construction, read-only afterwards)
  std::vector<int64_t> bins_;
};

void UpdateRow(EmbeddingTable* table, int64_t row) {
  MutexLock stripe(&table->RowMutex(row));  // one stripe at a time
  (void)row;
}

void MoveCharged(comm::Fabric* fabric, int dst, int src, int64_t bytes) {
  fabric->Transfer(dst, src, bytes, comm::TrafficClass::kEmbedding);
}

struct Scratch {
  std::vector<float> buf;
};

HETGMP_HOT_PATH void GatherRows(Scratch* s, const float* src, int64_t n) {
  s->buf.resize(static_cast<size_t>(n));  // amortized member scratch: ok
  std::vector<float>& buf = s->buf;       // reference binding: ok
  std::vector<float> empty;               // default-constructed: ok
  for (int64_t i = 0; i < n; ++i) buf[static_cast<size_t>(i)] = src[i];
  (void)empty;
}

HETGMP_BIT_STABLE double SumLoss(const std::vector<double>& per_worker) {
  double total = 0.0;
  for (double loss : per_worker) total += loss;  // ordered container: ok
  return total;
}

}  // namespace hetgmp
