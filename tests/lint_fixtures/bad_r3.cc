// Lint fixture: R3 — Fabric byte-moving calls that never charge a
// TrafficClass, so the bytes vanish from the traffic ledger.

#include "comm/fabric.h"

namespace hetgmp {

void MoveUncharged(comm::Fabric* fabric, int dst, int src, int64_t bytes) {
  fabric->Transfer(dst, src, bytes);            // R3: no TrafficClass
  fabric->TransferToHost(dst, bytes, nullptr);  // R3: no TrafficClass
}

}  // namespace hetgmp
