// Lint fixture: R2 — a mutex-owning class with an unannotated mutable
// field and no `// lint: unguarded(reason)` waiver.

#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace hetgmp {

class Counters {
 public:
  void Bump();

 private:
  Mutex mu_{lock_rank::kBatcher};
  int64_t hits_ HETGMP_GUARDED_BY(mu_) = 0;
  std::vector<int64_t> history_;  // R2: mutable, unguarded, unwaived
};

}  // namespace hetgmp
