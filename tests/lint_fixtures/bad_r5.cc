// Lint fixture: R5 — bit-determinism hazards inside a HETGMP_BIT_STABLE
// function: a reassociating reduction, and FP accumulation driven by
// unordered-container iteration order.

#include <numeric>
#include <unordered_map>

#include "common/lint_tags.h"

namespace hetgmp {

HETGMP_BIT_STABLE double SumLoss(
    const std::unordered_map<int, double>& per_worker, const double* v,
    int64_t n) {
  double total = std::reduce(v, v + n);  // R5: reassociating reduction
  for (const auto& [id, loss] : per_worker) {  // R5: unordered iteration
    total += loss;
  }
  return total;
}

}  // namespace hetgmp
