// Lint fixture: R1 violations against the ISSUE 7 storage ranks
// (kStorePrefetch=15, kStoreWarm=52, kStoreCold=54). Never compiled —
// only fed to hetgmp_lint by lint_test.cc.

#include "common/thread_annotations.h"

namespace hetgmp {

class WrongStoreOrder {
 public:
  // The legal nesting is warm stripe (52) -> cold directory (54), the
  // order TieredEmbeddingStore spills under. Acquiring the cold mutex
  // first inverts it.
  void ColdUnderWarmInverted() {
    MutexLock outer(&cold_mu_);
    MutexLock inner(&warm_mu_);  // R1: 52 under 54
  }

  // The prefetch pipeline's slot mutex (15) must be released before the
  // store's stripes are touched; holding it across a warm acquisition is
  // legal rank-wise, but taking it back INSIDE a stripe is not.
  void PrefetchUnderWarmInverted() {
    MutexLock stripe(&warm_mu_);
    MutexLock slot(&prefetch_mu_);  // R1: 15 under 52
  }

 private:
  Mutex prefetch_mu_{lock_rank::kStorePrefetch};
  Mutex warm_mu_{lock_rank::kStoreWarm};
  Mutex cold_mu_{lock_rank::kStoreCold};
};

}  // namespace hetgmp
