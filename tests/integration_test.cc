// End-to-end integration tests: the paper's qualitative claims, verified
// in miniature. Each test states which table/figure it guards.

#include <gtest/gtest.h>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "graph/cooccurrence.h"
#include "partition/bicut_partitioner.h"
#include "partition/hybrid_partitioner.h"
#include "partition/multilevel_partitioner.h"
#include "partition/quality.h"
#include "partition/random_partitioner.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig MediumConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 8000;
  cfg.num_fields = 12;
  cfg.num_features = 1500;
  cfg.num_clusters = 8;
  cfg.seed = 301;
  return cfg;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture()
      : train_(GenerateSyntheticCtr(MediumConfig())),
        test_(train_.SplitTail(0.2)),
        topology_(Topology::EightGpuQpi()) {}

  EngineConfig Config(Strategy s) const {
    EngineConfig cfg;
    cfg.strategy = s;
    ApplyStrategyDefaults(&cfg);
    cfg.batch_size = 128;
    cfg.embedding_dim = 8;
    cfg.rounds_per_epoch = 2;
    return cfg;
  }

  CtrDataset train_;
  CtrDataset test_;
  Topology topology_;
};

// Figure 7 / §7.1: HET-GMP outperforms the GPU baselines end to end, and
// CPU-PS systems are far slower per epoch (simulated time).
TEST_F(IntegrationFixture, HetGmpFasterThanBaselinesPerEpoch) {
  auto time_of = [&](Strategy s) {
    ExperimentResult r =
        RunExperiment(Config(s), train_, test_, topology_, 2);
    return r.train.total_sim_time;
  };
  const double gmp = time_of(Strategy::kHetGmp);
  const double mp = time_of(Strategy::kHetMp);
  const double hugectr = time_of(Strategy::kHugeCtr);
  const double tfps = time_of(Strategy::kTfPs);
  EXPECT_LT(gmp, mp);
  EXPECT_LT(gmp, hugectr);
  EXPECT_GT(tfps, hugectr * 2);  // CPU PS is the slow tier
}

// Figure 7: HugeCTR and HET-MP "select the same system design" and behave
// alike.
TEST_F(IntegrationFixture, HugeCtrAndHetMpAreClose) {
  ExperimentResult a =
      RunExperiment(Config(Strategy::kHugeCtr), train_, test_, topology_, 2);
  ExperimentResult b =
      RunExperiment(Config(Strategy::kHetMp), train_, test_, topology_, 2);
  EXPECT_NEAR(a.train.total_sim_time / b.train.total_sim_time, 1.0, 0.1);
}

// Table 2: AUC is robust through moderate staleness and degrades at s=∞.
TEST_F(IntegrationFixture, StalenessSweepMatchesTable2Shape) {
  auto auc_of = [&](uint64_t s) {
    EngineConfig cfg = Config(Strategy::kHetGmp);
    cfg.bound.s = s;
    ExperimentResult r = RunExperiment(cfg, train_, test_, topology_, 4);
    return r.train.final_auc;
  };
  const double auc0 = auc_of(0);
  const double auc100 = auc_of(100);
  const double auc_inf = auc_of(StalenessBound::kUnbounded);
  EXPECT_NEAR(auc0, auc100, 0.02);    // s=0 ≈ s=100
  EXPECT_GT(auc0, 0.62);
  EXPECT_LT(auc_inf, auc0 + 0.005);   // unbounded never beats bounded...
  EXPECT_GT(auc0 - auc_inf, -0.01);
}

// Figure 8: embedding traffic dominates and 2-D partitioning slashes it.
TEST_F(IntegrationFixture, CommBreakdownShape) {
  EngineConfig random_cfg = Config(Strategy::kHetMp);
  EngineConfig gmp_cfg = Config(Strategy::kHetGmp);
  gmp_cfg.bound.s = 100;
  ExperimentResult rr =
      RunExperiment(random_cfg, train_, test_, topology_, 1);
  ExperimentResult rg = RunExperiment(gmp_cfg, train_, test_, topology_, 1);
  const RoundStats& lr = rr.train.rounds.back();
  const RoundStats& lg = rg.train.rounds.back();
  // Index+clock traffic is small next to embedding payloads (at d=8 the
  // per-row metadata ratio is exactly 1:4).
  EXPECT_LE(lr.index_clock_bytes, lr.embedding_bytes / 4);
  // 2-D partitioning + staleness reduce embedding bytes substantially.
  EXPECT_LT(lg.embedding_bytes, lr.embedding_bytes * 2 / 3);
}

// Table 3: the full algorithm ranking on a realistic dataset.
TEST_F(IntegrationFixture, Table3Ranking) {
  Bigraph graph(train_);
  const auto remote = [&](Partition p) {
    return EvaluatePartition(graph, p).remote_accesses;
  };
  const int64_t random = remote(RandomPartitioner().Run(graph, 8));
  const int64_t bicut = remote(BiCutPartitioner().Run(graph, 8));
  HybridPartitionerOptions r1;
  r1.rounds = 1;
  r1.secondary_fraction = 0.01;
  HybridPartitionerOptions r3 = r1;
  r3.rounds = 3;
  const int64_t ours1 = remote(HybridPartitioner(r1).Run(graph, 8));
  const int64_t ours3 = remote(HybridPartitioner(r3).Run(graph, 8));
  EXPECT_LT(bicut, random);
  EXPECT_LT(ours1, bicut);
  EXPECT_LE(ours3, static_cast<int64_t>(ours1 * 1.05));
  // Our reduction far exceeds BiCut's (paper: 37-68% vs 13-19%).
  const double ours_reduction = 1.0 - double(ours3) / random;
  const double bicut_reduction = 1.0 - double(bicut) / random;
  EXPECT_GT(ours_reduction, bicut_reduction * 1.5);
}

// Figure 9: topology-aware (hierarchical) partitioning beats uniform
// weights, which beats random, on weighted communication cost.
TEST_F(IntegrationFixture, HierarchicalPartitioningWins) {
  Topology cluster = Topology::ClusterB(16);
  Bigraph graph(train_);
  const auto weighted = [&](const Partition& p) {
    return EvaluatePartition(graph, p, cluster.CommWeightMatrix())
        .weighted_remote;
  };
  HybridPartitionerOptions plain;
  plain.secondary_fraction = 0.0;
  HybridPartitionerOptions uniform = plain;
  uniform.comm_weight = cluster.UniformWeightMatrix();
  HybridPartitionerOptions hier = plain;
  hier.comm_weight = cluster.CommWeightMatrix();
  const double w_random = weighted(RandomPartitioner().Run(graph, 16));
  const double w_uniform = weighted(HybridPartitioner(uniform).Run(graph, 16));
  const double w_hier = weighted(HybridPartitioner(hier).Run(graph, 16));
  EXPECT_LT(w_uniform, w_random);
  EXPECT_LT(w_hier, w_uniform);
}

// Figure 10: HugeCTR throughput collapses when workers span machines;
// HET-GMP holds up better.
TEST_F(IntegrationFixture, ScalabilityDipAndRobustness) {
  auto throughput = [&](Strategy s, const Topology& topo) {
    EngineConfig cfg = Config(s);
    // Throughput contrasts need realistic per-iteration payloads; tiny
    // batches are latency-floor bound and compress all strategies.
    cfg.batch_size = 512;
    cfg.embedding_dim = 16;
    Bigraph graph(train_);
    Partition p = BuildPartition(cfg, graph, topo);
    Engine engine(cfg, train_, test_, topo, p);
    TrainResult r = engine.Train(1);
    return r.Throughput();
  };
  Topology one_node = Topology::ClusterB(8);
  Topology two_nodes = Topology::ClusterB(16);
  const double hugectr_8 = throughput(Strategy::kHugeCtr, one_node);
  const double hugectr_16 = throughput(Strategy::kHugeCtr, two_nodes);
  const double gmp_16 = throughput(Strategy::kHetGmp, two_nodes);
  EXPECT_LT(hugectr_16, hugectr_8);        // the dip
  EXPECT_GT(gmp_16, hugectr_16 * 1.3);     // HET-GMP stays ahead
}

// Figure 3: multilevel clustering of the co-occurrence graph exposes the
// dense diagonal blocks.
TEST_F(IntegrationFixture, CooccurrenceClustering) {
  WeightedGraph graph = BuildCooccurrenceGraph(train_);
  std::vector<int> clusters = MultilevelPartitioner().Cluster(graph, 8);
  const double within = WithinClusterWeightFraction(graph, clusters);
  EXPECT_GT(within, 2.5 / 8.0);  // ≥ 2.5x random baseline
}

// Figure 1: communication dominates the training cycle for the HugeCTR
// design, and the fraction grows as links get slower.
TEST_F(IntegrationFixture, CommFractionGrowsWithSlowerLinks) {
  auto comm_fraction = [&](const Topology& topo) {
    EngineConfig cfg = Config(Strategy::kHugeCtr);
    Bigraph graph(train_);
    Partition p = BuildPartition(cfg, graph, topo);
    Engine engine(cfg, train_, test_, topo, p);
    TrainResult r = engine.Train(1);
    return r.comm_time / (r.comm_time + r.compute_time);
  };
  const double nvlink = comm_fraction(Topology::FourGpuNvlink());
  const double pcie = comm_fraction(Topology::FourGpuPcie());
  EXPECT_GT(pcie, nvlink);
  EXPECT_GT(pcie, 0.5);  // the headline: comm dominates
}

}  // namespace
}  // namespace hetgmp
