#include <gtest/gtest.h>

#include "comm/topology.h"
#include "core/runner.h"
#include "data/synthetic.h"
#include "graph/bigraph.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig TinyConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 1500;
  cfg.num_fields = 6;
  cfg.num_features = 400;
  cfg.num_clusters = 4;
  cfg.seed = 61;
  return cfg;
}

TEST(RunnerTest, BuildPartitionRespectsPlacementPolicies) {
  CtrDataset d = GenerateSyntheticCtr(TinyConfig());
  Bigraph g(d);
  Topology topo = Topology::FourGpuNvlink();
  for (PlacementPolicy policy :
       {PlacementPolicy::kRandom, PlacementPolicy::kBiCut,
        PlacementPolicy::kHybrid}) {
    EngineConfig cfg;
    cfg.placement = policy;
    Partition p = BuildPartition(cfg, g, topo);
    EXPECT_EQ(p.num_parts, 4);
    EXPECT_EQ(p.num_samples(), g.num_samples());
    EXPECT_EQ(p.num_embeddings(), g.num_embeddings());
  }
}

TEST(RunnerTest, CapacityWeightsDerivedFromSlowdown) {
  CtrDataset d = GenerateSyntheticCtr(TinyConfig());
  Bigraph g(d);
  Topology topo = Topology::FourGpuNvlink();
  EngineConfig cfg;
  cfg.placement = PlacementPolicy::kHybrid;
  cfg.balance_batch_to_capacity = true;
  cfg.worker_slowdown = {5.0, 1.0, 1.0, 1.0};
  Partition p = BuildPartition(cfg, g, topo);
  std::vector<int64_t> counts(4, 0);
  for (int o : p.sample_owner) ++counts[o];
  // The slow worker owns the fewest samples.
  for (int w = 1; w < 4; ++w) EXPECT_LT(counts[0], counts[w]);
}

TEST(RunnerTest, ExperimentDescriptionNamesEverything) {
  CtrDataset train = GenerateSyntheticCtr(TinyConfig());
  CtrDataset test = train.SplitTail(0.2);
  EngineConfig cfg;
  cfg.strategy = Strategy::kHetGmp;
  ApplyStrategyDefaults(&cfg);
  cfg.batch_size = 64;
  cfg.embedding_dim = 8;
  ExperimentResult r = RunExperiment(cfg, train, test,
                                     Topology::FourGpuNvlink(), 1);
  EXPECT_NE(r.description.find("HET-GMP"), std::string::npos);
  EXPECT_NE(r.description.find("synthetic"), std::string::npos);
  EXPECT_NE(r.description.find("NVLink"), std::string::npos);
}

TEST(RunnerTest, ConvergenceCurveFormatting) {
  TrainResult r;
  RoundStats rs;
  rs.sim_time = 0.5;
  rs.auc = 0.75;
  rs.train_loss = 0.42;
  r.rounds.push_back(rs);
  const std::string out = FormatConvergenceCurve(r);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
  EXPECT_NE(out.find("0.7500"), std::string::npos);
  EXPECT_NE(out.find("0.4200"), std::string::npos);
}

}  // namespace
}  // namespace hetgmp
