#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "data/synthetic.h"
#include "graph/cooccurrence.h"
#include "partition/multilevel_partitioner.h"

namespace hetgmp {
namespace {

// A planted-partition graph: `k` blocks of `block` vertices, dense heavy
// edges inside blocks, sparse light edges across.
WeightedGraph PlantedGraph(int k, int block, uint64_t seed) {
  Rng rng(seed);
  const int64_t n = static_cast<int64_t>(k) * block;
  std::vector<std::vector<std::pair<int64_t, double>>> adj(n);
  auto add = [&](int64_t u, int64_t v, double w) {
    adj[u].emplace_back(v, w);
    adj[v].emplace_back(u, w);
  };
  for (int64_t u = 0; u < n; ++u) {
    for (int e = 0; e < 6; ++e) {
      // Intra-block heavy edge.
      const int64_t base = (u / block) * block;
      const int64_t v = base + static_cast<int64_t>(rng.NextUint64(block));
      if (v != u) add(u, v, 10.0);
    }
    if (rng.NextBool(0.2)) {
      const int64_t v = static_cast<int64_t>(rng.NextUint64(n));
      if (v != u) add(u, v, 1.0);
    }
  }
  return WeightedGraph(n, std::move(adj));
}

TEST(MultilevelTest, RecoversPlantedBlocks) {
  const int k = 4, block = 100;
  WeightedGraph g = PlantedGraph(k, block, 3);
  MultilevelPartitioner ml;
  std::vector<int> clusters = ml.Cluster(g, k);
  const double within = WithinClusterWeightFraction(g, clusters);
  // Planted structure: ≥ 80% of weight should stay within clusters
  // (random assignment would score ~0.25).
  EXPECT_GT(within, 0.8);
}

TEST(MultilevelTest, BeatsRandomCut) {
  WeightedGraph g = PlantedGraph(8, 60, 5);
  MultilevelPartitioner ml;
  std::vector<int> clusters = ml.Cluster(g, 8);
  Rng rng(7);
  std::vector<int> random(g.num_vertices());
  for (auto& c : random) c = static_cast<int>(rng.NextUint64(8));
  EXPECT_LT(MultilevelPartitioner::CutWeight(g, clusters),
            0.5 * MultilevelPartitioner::CutWeight(g, random));
}

TEST(MultilevelTest, BalanceWithinSlack) {
  WeightedGraph g = PlantedGraph(4, 80, 9);
  MultilevelOptions opt;
  opt.max_imbalance = 0.10;
  MultilevelPartitioner ml(opt);
  std::vector<int> clusters = ml.Cluster(g, 4);
  std::vector<int64_t> sizes(4, 0);
  for (int c : clusters) ++sizes[c];
  const double max_allowed = 1.1 * g.num_vertices() / 4.0;
  for (int64_t s : sizes) {
    EXPECT_LE(s, static_cast<int64_t>(max_allowed) + 1);
  }
}

TEST(MultilevelTest, SingleClusterTrivial) {
  WeightedGraph g = PlantedGraph(2, 30, 11);
  std::vector<int> clusters = MultilevelPartitioner().Cluster(g, 1);
  for (int c : clusters) EXPECT_EQ(c, 0);
}

TEST(MultilevelTest, DeterministicForSeed) {
  WeightedGraph g = PlantedGraph(4, 50, 13);
  MultilevelOptions opt;
  opt.seed = 77;
  MultilevelPartitioner a(opt), b(opt);
  EXPECT_EQ(a.Cluster(g, 4), b.Cluster(g, 4));
}

TEST(MultilevelTest, CutWeightOfUniformAssignment) {
  WeightedGraph g = PlantedGraph(2, 40, 15);
  std::vector<int> all_zero(g.num_vertices(), 0);
  EXPECT_DOUBLE_EQ(MultilevelPartitioner::CutWeight(g, all_zero), 0.0);
}

TEST(MultilevelTest, HandlesEdgelessVertices) {
  // Graph with isolated vertices must not crash or loop.
  std::vector<std::vector<std::pair<int64_t, double>>> adj(10);
  adj[0] = {{1, 1.0}};
  adj[1] = {{0, 1.0}};
  WeightedGraph g(10, adj);
  std::vector<int> clusters = MultilevelPartitioner().Cluster(g, 2);
  EXPECT_EQ(clusters.size(), 10u);
  EXPECT_EQ(clusters[0], clusters[1]);  // the only edge stays internal
}

TEST(MultilevelTest, CooccurrenceClusteringShowsDiagonal) {
  // The Figure 3 experiment in miniature: cluster the co-occurrence graph
  // of a locality-rich dataset; the within-cluster weight fraction (our
  // quantitative "dense diagonal blocks") must beat random by a wide
  // margin.
  SyntheticCtrConfig cfg;
  cfg.num_samples = 3000;
  cfg.num_fields = 8;
  cfg.num_features = 800;
  cfg.num_clusters = 8;
  cfg.cluster_affinity = 0.9;
  cfg.seed = 17;
  CtrDataset d = GenerateSyntheticCtr(cfg);
  WeightedGraph g = BuildCooccurrenceGraph(d);
  std::vector<int> clusters = MultilevelPartitioner().Cluster(g, 8);
  const double within = WithinClusterWeightFraction(g, clusters);
  EXPECT_GT(within, 3.0 / 8.0);  // ≥ 3x the random baseline of 1/8
}

class MultilevelKSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultilevelKSweep, ValidAssignment) {
  const int k = GetParam();
  WeightedGraph g = PlantedGraph(4, 50, 19);
  std::vector<int> clusters = MultilevelPartitioner().Cluster(g, k);
  EXPECT_EQ(clusters.size(), static_cast<size_t>(g.num_vertices()));
  for (int c : clusters) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, MultilevelKSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace hetgmp
