#ifndef HETGMP_TESTS_MULTIPROC_DRIVER_H_
#define HETGMP_TESTS_MULTIPROC_DRIVER_H_

// Fork-based multi-process test driver for the socket transport backend.
//
// Each rank of a world runs in its own forked child process; the parent
// collects one string of output per rank (over a pipe) plus the exit
// code, with a hard deadline: a hung child is SIGKILLed and reported as
// a failure rather than hanging the test binary. Children terminate via
// _exit() so gtest atexit handlers and buffered state never run twice.
//
// Not TSan-compatible (sanitizer runtimes do not survive fork of a
// threaded process); callers GTEST_SKIP under TSan — see
// HETGMP_TSAN_ENABLED below.

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "comm/socket_transport.h"
#include "comm/transport.h"

#if defined(__SANITIZE_THREAD__)
#define HETGMP_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETGMP_TSAN_ENABLED 1
#endif
#endif

namespace hetgmp {
namespace testing_multiproc {

struct MultiProcResult {
  bool all_exited_cleanly = false;   // every rank: exited, code 0, in time
  std::vector<int> exit_codes;       // -1 = killed by driver / signalled
  std::vector<std::string> outputs;  // what each rank wrote via *out
  std::string failure;               // human-readable driver diagnosis
};

namespace detail {

inline int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Forks `world` children running `child_body(rank)` (its return value is
// the exit code; whatever it writes to the rank's pipe becomes
// outputs[rank]) and supervises them against the deadline.
inline MultiProcResult Supervise(
    int world, int timeout_ms,
    const std::function<int(int rank, int out_fd)>& child_body,
    const std::function<void()>& after_fork_parent = {}) {
  MultiProcResult result;
  result.exit_codes.assign(world, -1);
  result.outputs.assign(world, "");

  std::vector<pid_t> pids(world, -1);
  std::vector<int> pipes(world, -1);
  for (int r = 0; r < world; ++r) {
    int pfd[2];
    if (::pipe(pfd) != 0) {
      result.failure = "pipe() failed";
      return result;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      result.failure = "fork() failed";
      ::close(pfd[0]);
      ::close(pfd[1]);
      return result;
    }
    if (pid == 0) {
      // Child: keep only the write end of its own pipe (plus whatever
      // fds child_body was built over).
      ::close(pfd[0]);
      for (int j = 0; j < r; ++j) {
        if (pipes[j] >= 0) ::close(pipes[j]);
      }
      const int code = child_body(r, pfd[1]);
      ::close(pfd[1]);
      ::_exit(code);
    }
    ::close(pfd[1]);
    pids[r] = pid;
    pipes[r] = pfd[0];
  }

  // Release resources only the children should now own (e.g. the mesh
  // fds) so peer death shows up as EOF, not a parent-held-open socket.
  if (after_fork_parent) after_fork_parent();

  // Drain pipes until EOF (child exit closes the write end), then reap.
  const int64_t deadline = NowMs() + timeout_ms;
  int open_pipes = world;
  while (open_pipes > 0 && NowMs() < deadline) {
    std::vector<struct pollfd> pfds;
    std::vector<int> ranks;
    for (int r = 0; r < world; ++r) {
      if (pipes[r] >= 0) {
        pfds.push_back({pipes[r], POLLIN, 0});
        ranks.push_back(r);
      }
    }
    const int pr = ::poll(pfds.data(), pfds.size(),
                          static_cast<int>(deadline - NowMs()));
    if (pr <= 0) continue;  // timeout or EINTR; loop re-checks deadline
    for (size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      const int r = ranks[i];
      char buf[4096];
      const ssize_t n = ::read(pipes[r], buf, sizeof(buf));
      if (n > 0) {
        result.outputs[r].append(buf, static_cast<size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        ::close(pipes[r]);
        pipes[r] = -1;
        --open_pipes;
      }
    }
  }

  bool clean = true;
  for (int r = 0; r < world; ++r) {
    int status = 0;
    int64_t remaining = deadline - NowMs();
    pid_t got = ::waitpid(pids[r], &status, WNOHANG);
    while (got == 0 && remaining > 0) {
      ::usleep(5 * 1000);
      remaining = deadline - NowMs();
      got = ::waitpid(pids[r], &status, WNOHANG);
    }
    if (got == 0) {
      // Hung past the deadline: kill and report, never hang the suite.
      ::kill(pids[r], SIGKILL);
      (void)::waitpid(pids[r], &status, 0);
      result.failure += "rank " + std::to_string(r) +
                        " hung past the deadline (SIGKILLed); ";
      clean = false;
      continue;
    }
    if (WIFEXITED(status)) {
      result.exit_codes[r] = WEXITSTATUS(status);
      if (result.exit_codes[r] != 0) {
        result.failure += "rank " + std::to_string(r) + " exited with " +
                          std::to_string(result.exit_codes[r]) + "; ";
        clean = false;
      }
    } else {
      result.failure += "rank " + std::to_string(r) +
                        " died on signal " + std::to_string(WTERMSIG(status)) +
                        "; ";
      clean = false;
    }
  }
  for (int r = 0; r < world; ++r) {
    if (pipes[r] >= 0) ::close(pipes[r]);
  }
  result.all_exited_cleanly = clean;
  return result;
}

inline void WriteAll(int fd, const std::string& s) {
  size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::write(fd, s.data() + off, s.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace detail

// Runs `body(rank, &out)` in `world` forked processes. The body builds
// its own transport (e.g. via SocketFabric::RendezvousTcp) and returns
// its exit code; `out` is shipped back to the parent.
inline MultiProcResult RunForkedRanks(
    int world, const std::function<int(int rank, std::string* out)>& body,
    int timeout_ms = 30000) {
  return detail::Supervise(
      world, timeout_ms, [&](int rank, int out_fd) -> int {
        std::string out;
        const int code = body(rank, &out);
        detail::WriteAll(out_fd, out);
        return code;
      });
}

// Builds a pre-connected socketpair mesh, forks one process per rank,
// and hands each child its SocketFabric over the inherited fds — the
// "pre-forked local world" path of DESIGN.md §5g.
inline MultiProcResult RunForkedMeshRanks(
    int world,
    const std::function<int(int rank, Transport* t, std::string* out)>& body,
    TransportOptions options = {}, int timeout_ms = 30000) {
  Result<std::vector<std::vector<int>>> mesh =
      SocketFabric::CreateLocalMesh(world);
  if (!mesh.ok()) {
    MultiProcResult r;
    r.failure = "CreateLocalMesh: " + mesh.status().ToString();
    return r;
  }
  std::vector<std::vector<int>>& fds = mesh.value();
  MultiProcResult result = detail::Supervise(
      world, timeout_ms,
      [&](int rank, int out_fd) -> int {
        // Keep only this rank's row; close every other inherited end so
        // peer death produces EOF instead of a silently held-open fd.
        for (int i = 0; i < world; ++i) {
          for (int j = 0; j < world; ++j) {
            if (i != rank && fds[i][j] >= 0) ::close(fds[i][j]);
          }
        }
        std::unique_ptr<SocketFabric> t =
            SocketFabric::FromFds(rank, world, fds[rank], options);
        std::string out;
        const int code = body(rank, t.get(), &out);
        detail::WriteAll(out_fd, out);
        t.reset();
        return code;
      },
      [&fds]() {
        for (auto& row : fds) {
          for (int& fd : row) {
            if (fd >= 0) ::close(fd);
            fd = -1;
          }
        }
      });
  return result;
}

}  // namespace testing_multiproc
}  // namespace hetgmp

#endif  // HETGMP_TESTS_MULTIPROC_DRIVER_H_
