#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sync/clock_table.h"
#include "sync/staleness.h"

namespace hetgmp {
namespace {

// ------------------------------------------------------------ ClockTable

TEST(ClockTableTest, StartsAtZero) {
  ClockTable t(4, 100);
  for (int w = 0; w < 4; ++w) {
    for (int64_t x = 0; x < 100; ++x) {
      EXPECT_EQ(t.Get(w, x), 0u);
    }
  }
}

TEST(ClockTableTest, SetGetIncrement) {
  ClockTable t(2, 10);
  t.Set(1, 5, 42);
  EXPECT_EQ(t.Get(1, 5), 42u);
  EXPECT_EQ(t.Increment(1, 5), 43u);
  EXPECT_EQ(t.Increment(1, 5, 7), 50u);
  EXPECT_EQ(t.Get(1, 5), 50u);
  // Other cells untouched.
  EXPECT_EQ(t.Get(0, 5), 0u);
  EXPECT_EQ(t.Get(1, 4), 0u);
}

TEST(ClockTableTest, ResetClears) {
  ClockTable t(2, 4);
  t.Increment(0, 0);
  t.Increment(1, 3, 9);
  t.Reset();
  EXPECT_EQ(t.Get(0, 0), 0u);
  EXPECT_EQ(t.Get(1, 3), 0u);
}

TEST(ClockTableTest, ConcurrentIncrementsAreExact) {
  ClockTable t(1, 1);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < 10000; ++j) t.Increment(0, 0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.Get(0, 0), 80000u);
}

// ------------------------------------------------------------- Staleness

TEST(StalenessTest, IntraFreshWithinBound) {
  StalenessBound b;
  b.s = 10;
  EXPECT_TRUE(IntraEmbeddingFresh(100, 100, b));  // equal
  EXPECT_TRUE(IntraEmbeddingFresh(95, 100, b));   // gap 5
  EXPECT_TRUE(IntraEmbeddingFresh(90, 100, b));   // gap exactly s
  EXPECT_FALSE(IntraEmbeddingFresh(89, 100, b));  // gap 11
}

TEST(StalenessTest, IntraPrimaryNeverBehind) {
  StalenessBound b;
  b.s = 0;
  // Secondary "ahead" can only mean the primary clock read raced; treat
  // as fresh rather than refreshing.
  EXPECT_TRUE(IntraEmbeddingFresh(101, 100, b));
}

TEST(StalenessTest, SZeroMeansAnyForeignUpdateIsStale) {
  StalenessBound b;
  b.s = 0;
  EXPECT_TRUE(IntraEmbeddingFresh(100, 100, b));
  EXPECT_FALSE(IntraEmbeddingFresh(99, 100, b));
}

TEST(StalenessTest, UnboundedToleratesEverything) {
  StalenessBound b;
  b.s = StalenessBound::kUnbounded;
  EXPECT_TRUE(b.unbounded());
  EXPECT_TRUE(IntraEmbeddingFresh(0, uint64_t{1} << 60, b));
  EXPECT_TRUE(InterEmbeddingFresh(0, 0.5, uint64_t{1} << 60, 0.5, b));
}

TEST(StalenessTest, NormalizedGapScalesHotterClock) {
  // Paper §5.3: p_i >= p_j → gap = |c_i * p_j/p_i − c_j|. Hot embedding i
  // with 10x frequency and 10x clock is NOT stale relative to j.
  EXPECT_NEAR(NormalizedClockGap(1000, 0.1, 100, 0.01, true), 0.0, 1e-9);
  // Without normalization the same pair looks 900 apart.
  EXPECT_DOUBLE_EQ(NormalizedClockGap(1000, 0.1, 100, 0.01, false), 900.0);
}

TEST(StalenessTest, NormalizationIsSymmetric) {
  EXPECT_NEAR(NormalizedClockGap(1000, 0.1, 100, 0.01, true),
              NormalizedClockGap(100, 0.01, 1000, 0.1, true), 1e-9);
}

TEST(StalenessTest, EqualFrequencyReducesToRawGap) {
  EXPECT_DOUBLE_EQ(NormalizedClockGap(50, 0.2, 80, 0.2, true), 30.0);
}

TEST(StalenessTest, ZeroFrequencySkipsNormalization) {
  EXPECT_DOUBLE_EQ(NormalizedClockGap(50, 0.0, 80, 0.1, true), 30.0);
}

TEST(StalenessTest, InterFreshRespectsBound) {
  StalenessBound b;
  b.s = 100;
  b.normalize_by_frequency = true;
  EXPECT_TRUE(InterEmbeddingFresh(1000, 0.1, 100, 0.01, b));
  EXPECT_TRUE(InterEmbeddingFresh(1000, 0.1, 150, 0.01, b));   // gap 50
  EXPECT_FALSE(InterEmbeddingFresh(1000, 0.1, 250, 0.01, b));  // gap 150
}

TEST(StalenessTest, InterWithoutNormalization) {
  StalenessBound b;
  b.s = 100;
  b.normalize_by_frequency = false;
  EXPECT_FALSE(InterEmbeddingFresh(1000, 0.1, 100, 0.01, b));  // raw 900
  EXPECT_TRUE(InterEmbeddingFresh(150, 0.1, 100, 0.01, b));    // raw 50
}

TEST(StalenessTest, ModeNames) {
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kBsp), "BSP");
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kAsp), "ASP");
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kSsp), "SSP");
  EXPECT_STREQ(ConsistencyModeName(ConsistencyMode::kGraphBounded),
               "graph-bounded");
}

// Property sweep: for every s, the intra predicate is exactly
// gap <= s (one-sided).
class StalenessBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StalenessBoundSweep, IntraPredicateIsExact) {
  StalenessBound b;
  b.s = GetParam();
  for (uint64_t gap : {uint64_t{0}, uint64_t{1}, b.s, b.s + 1, b.s * 2 + 1}) {
    const uint64_t primary = 1000000 + gap;
    EXPECT_EQ(IntraEmbeddingFresh(1000000, primary, b), gap <= b.s)
        << "s=" << b.s << " gap=" << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, StalenessBoundSweep,
                         ::testing::Values(0, 1, 10, 100, 10000));

}  // namespace
}  // namespace hetgmp
