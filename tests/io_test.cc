#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/random.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "embed/checkpoint.h"
#include "tensor/tensor.h"

namespace hetgmp {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/hetgmp_io_" + tag + "_" +
         std::to_string(::getpid());
}

SyntheticCtrConfig SmallConfig() {
  SyntheticCtrConfig cfg;
  cfg.num_samples = 500;
  cfg.num_fields = 6;
  cfg.num_features = 300;
  cfg.num_clusters = 4;
  cfg.seed = 33;
  return cfg;
}

// --------------------------------------------------------- dataset (bin)

TEST(DatasetIoTest, RoundTrip) {
  CtrDataset original = GenerateSyntheticCtr(SmallConfig());
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  Result<CtrDataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const CtrDataset& d = loaded.value();
  EXPECT_EQ(d.name(), original.name());
  EXPECT_EQ(d.num_fields(), original.num_fields());
  EXPECT_EQ(d.field_offsets(), original.field_offsets());
  EXPECT_EQ(d.feature_ids(), original.feature_ids());
  EXPECT_EQ(d.labels(), original.labels());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  Result<CtrDataset> r = LoadDataset("/nonexistent/path/ds.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, WrongMagicRejected) {
  const std::string path = TempPath("magic");
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a dataset";
  }
  Result<CtrDataset> r = LoadDataset(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncatedFileRejected) {
  CtrDataset original = GenerateSyntheticCtr(SmallConfig());
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), bytes.size() / 2);
  }
  Result<CtrDataset> r = LoadDataset(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadedDatasetIsUsable) {
  CtrDataset original = GenerateSyntheticCtr(SmallConfig());
  const std::string path = TempPath("usable");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  Result<CtrDataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().FeatureFrequencies(),
            original.FeatureFrequencies());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- libsvm

TEST(LibSvmTest, ParsesWellFormedInput) {
  //  fields: [0,3) and [3,5).
  const std::string text =
      "1 0 3\n"
      "0 2:1 4:1\n"
      "# comment line\n"
      "1 1 3\n";
  Result<CtrDataset> r = ParseLibSvmCtr(text, "svm", 2, {0, 3, 5});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CtrDataset& d = r.value();
  EXPECT_EQ(d.num_samples(), 3);
  EXPECT_EQ(d.num_features(), 5);
  EXPECT_EQ(d.sample_features(0)[0], 0);
  EXPECT_EQ(d.sample_features(0)[1], 3);
  EXPECT_EQ(d.sample_features(1)[0], 2);
  EXPECT_FLOAT_EQ(d.label(1), 0.0f);
}

TEST(LibSvmTest, RejectsBadLabel) {
  Result<CtrDataset> r = ParseLibSvmCtr("2 0 3\n", "svm", 2, {0, 3, 5});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(LibSvmTest, RejectsMissingFeature) {
  Result<CtrDataset> r = ParseLibSvmCtr("1 0\n", "svm", 2, {0, 3, 5});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expected 2"), std::string::npos);
}

TEST(LibSvmTest, RejectsOutOfFieldFeature) {
  // 4 belongs to field 1, not field 0.
  Result<CtrDataset> r = ParseLibSvmCtr("1 4 3\n", "svm", 2, {0, 3, 5});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("outside field"), std::string::npos);
}

TEST(LibSvmTest, RejectsTrailingTokens) {
  Result<CtrDataset> r = ParseLibSvmCtr("1 0 3 9\n", "svm", 2, {0, 3, 5});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos);
}

TEST(LibSvmTest, RejectsEmptyInput) {
  Result<CtrDataset> r = ParseLibSvmCtr("# only comments\n", "svm", 2,
                                        {0, 3, 5});
  EXPECT_FALSE(r.ok());
}

TEST(LibSvmTest, RejectsGarbageFeatureId) {
  Result<CtrDataset> r = ParseLibSvmCtr("1 abc 3\n", "svm", 2, {0, 3, 5});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad feature id"), std::string::npos);
}

// ---------------------------------------------------------- checkpoint

TEST(CheckpointTest, RoundTrip) {
  Rng rng(5);
  EmbeddingTable table(50, 8, 0.1f, 11);
  Tensor w = Tensor::Gaussian({4, 3}, 1.0f, &rng);
  Tensor b = Tensor::Gaussian({3}, 1.0f, &rng);
  const std::string path = TempPath("ckpt");
  ASSERT_TRUE(SaveCheckpoint(table, {&w, &b}, path).ok());

  EmbeddingTable restored(50, 8, 0.5f, 999);  // different init
  Tensor w2({4, 3}), b2({3});
  ASSERT_TRUE(LoadCheckpoint(path, &restored, {&w2, &b2}).ok());
  for (int64_t x = 0; x < 50; ++x) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(restored.UnsafeRow(x)[c], table.UnsafeRow(x)[c]);
    }
  }
  for (int64_t i = 0; i < w.size(); ++i) EXPECT_EQ(w2.at(i), w.at(i));
  for (int64_t i = 0; i < b.size(); ++i) EXPECT_EQ(b2.at(i), b.at(i));
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  EmbeddingTable table(50, 8, 0.1f, 11);
  const std::string path = TempPath("ckpt_shape");
  ASSERT_TRUE(SaveCheckpoint(table, {}, path).ok());
  EmbeddingTable wrong(50, 16, 0.1f, 11);
  Status st = LoadCheckpoint(path, &wrong, {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shape mismatch"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TensorCountMismatchRejected) {
  EmbeddingTable table(10, 4, 0.1f, 3);
  Tensor w({2, 2});
  const std::string path = TempPath("ckpt_count");
  ASSERT_TRUE(SaveCheckpoint(table, {&w}, path).ok());
  Status st = LoadCheckpoint(path, &table, {});
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  EmbeddingTable table(10, 4, 0.1f, 3);
  EXPECT_EQ(LoadCheckpoint("/no/such/ckpt", &table, {}).code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, SaveLeavesNoTempFile) {
  EmbeddingTable table(10, 4, 0.1f, 3);
  const std::string path = TempPath("ckpt_tmp");
  ASSERT_TRUE(SaveCheckpoint(table, {}, path).ok());
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);  // atomically renamed away
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TornWriteRejectedOnLoad) {
  Rng rng(7);
  EmbeddingTable table(30, 8, 0.1f, 11);
  Tensor w = Tensor::Gaussian({4, 3}, 1.0f, &rng);
  const std::string path = TempPath("ckpt_torn");
  ASSERT_TRUE(SaveCheckpoint(table, {&w}, path).ok());

  // Simulate a crash mid-write: truncate the footer sentinel (and a bit
  // of payload) off the end of the file.
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full_size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(full_size, 16);
  ASSERT_EQ(::truncate(path.c_str(), full_size - 12), 0);

  EmbeddingTable restored(30, 8, 0.5f, 99);
  Tensor w2({4, 3});
  Status st = LoadCheckpoint(path, &restored, {&w2});
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(LoadCheckpointEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrailingGarbageRejectedOnLoad) {
  EmbeddingTable table(10, 4, 0.1f, 3);
  const std::string path = TempPath("ckpt_trail");
  ASSERT_TRUE(SaveCheckpoint(table, {}, path).ok());
  FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[4] = {1, 2, 3, 4};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EmbeddingTable restored(10, 4, 0.5f, 99);
  EXPECT_FALSE(LoadCheckpoint(path, &restored, {}).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadCheckpointEmbeddingsRoundTrip) {
  Rng rng(9);
  EmbeddingTable table(20, 6, 0.1f, 5);
  // A dense section rides along; the embeddings-only loader must skip it
  // and still verify the footer behind it.
  Tensor w = Tensor::Gaussian({8, 2}, 1.0f, &rng);
  const std::string path = TempPath("ckpt_embed");
  ASSERT_TRUE(SaveCheckpoint(table, {&w}, path).ok());

  Result<CheckpointEmbeddings> r = LoadCheckpointEmbeddings(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows, 20);
  EXPECT_EQ(r.value().dim, 6);
  ASSERT_EQ(r.value().values.size(), 20u * 6u);
  for (int64_t x = 0; x < 20; ++x) {
    for (int d = 0; d < 6; ++d) {
      EXPECT_EQ(r.value().values[x * 6 + d], table.UnsafeRow(x)[d]);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetgmp
