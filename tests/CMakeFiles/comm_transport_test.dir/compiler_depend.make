# Empty compiler generated dependencies file for comm_transport_test.
# This may be replaced when dependencies are built.
