file(REMOVE_RECURSE
  "CMakeFiles/comm_transport_test.dir/comm_transport_test.cc.o"
  "CMakeFiles/comm_transport_test.dir/comm_transport_test.cc.o.d"
  "comm_transport_test"
  "comm_transport_test.pdb"
  "comm_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
