file(REMOVE_RECURSE
  "CMakeFiles/deepfm_test.dir/deepfm_test.cc.o"
  "CMakeFiles/deepfm_test.dir/deepfm_test.cc.o.d"
  "deepfm_test"
  "deepfm_test.pdb"
  "deepfm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
