# Empty compiler generated dependencies file for deepfm_test.
# This may be replaced when dependencies are built.
