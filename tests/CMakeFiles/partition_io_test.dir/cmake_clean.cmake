file(REMOVE_RECURSE
  "CMakeFiles/partition_io_test.dir/partition_io_test.cc.o"
  "CMakeFiles/partition_io_test.dir/partition_io_test.cc.o.d"
  "partition_io_test"
  "partition_io_test.pdb"
  "partition_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
