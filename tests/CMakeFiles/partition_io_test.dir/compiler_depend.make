# Empty compiler generated dependencies file for partition_io_test.
# This may be replaced when dependencies are built.
