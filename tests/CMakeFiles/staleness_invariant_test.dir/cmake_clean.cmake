file(REMOVE_RECURSE
  "CMakeFiles/staleness_invariant_test.dir/staleness_invariant_test.cc.o"
  "CMakeFiles/staleness_invariant_test.dir/staleness_invariant_test.cc.o.d"
  "staleness_invariant_test"
  "staleness_invariant_test.pdb"
  "staleness_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
