# Empty compiler generated dependencies file for staleness_invariant_test.
# This may be replaced when dependencies are built.
