file(REMOVE_RECURSE
  "CMakeFiles/hotpath_golden_test.dir/hotpath_golden_test.cc.o"
  "CMakeFiles/hotpath_golden_test.dir/hotpath_golden_test.cc.o.d"
  "hotpath_golden_test"
  "hotpath_golden_test.pdb"
  "hotpath_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpath_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
