file(REMOVE_RECURSE
  "CMakeFiles/partition_parallel_test.dir/partition_parallel_test.cc.o"
  "CMakeFiles/partition_parallel_test.dir/partition_parallel_test.cc.o.d"
  "partition_parallel_test"
  "partition_parallel_test.pdb"
  "partition_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
