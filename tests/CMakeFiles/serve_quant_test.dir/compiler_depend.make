# Empty compiler generated dependencies file for serve_quant_test.
# This may be replaced when dependencies are built.
