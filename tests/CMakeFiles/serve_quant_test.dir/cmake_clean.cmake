file(REMOVE_RECURSE
  "CMakeFiles/serve_quant_test.dir/serve_quant_test.cc.o"
  "CMakeFiles/serve_quant_test.dir/serve_quant_test.cc.o.d"
  "serve_quant_test"
  "serve_quant_test.pdb"
  "serve_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
