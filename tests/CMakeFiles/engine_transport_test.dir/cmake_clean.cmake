file(REMOVE_RECURSE
  "CMakeFiles/engine_transport_test.dir/engine_transport_test.cc.o"
  "CMakeFiles/engine_transport_test.dir/engine_transport_test.cc.o.d"
  "engine_transport_test"
  "engine_transport_test.pdb"
  "engine_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
