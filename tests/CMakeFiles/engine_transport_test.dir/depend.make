# Empty dependencies file for engine_transport_test.
# This may be replaced when dependencies are built.
