# Empty dependencies file for comm_fault_test.
# This may be replaced when dependencies are built.
