file(REMOVE_RECURSE
  "CMakeFiles/comm_fault_test.dir/comm_fault_test.cc.o"
  "CMakeFiles/comm_fault_test.dir/comm_fault_test.cc.o.d"
  "comm_fault_test"
  "comm_fault_test.pdb"
  "comm_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
