
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm_fault_test.cc" "tests/CMakeFiles/comm_fault_test.dir/comm_fault_test.cc.o" "gcc" "tests/CMakeFiles/comm_fault_test.dir/comm_fault_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/serve/CMakeFiles/hetgmp_serve.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/hetgmp_core.dir/DependInfo.cmake"
  "/root/repo/src/theory/CMakeFiles/hetgmp_theory.dir/DependInfo.cmake"
  "/root/repo/src/models/CMakeFiles/hetgmp_models.dir/DependInfo.cmake"
  "/root/repo/src/metrics/CMakeFiles/hetgmp_metrics.dir/DependInfo.cmake"
  "/root/repo/src/store/CMakeFiles/hetgmp_store.dir/DependInfo.cmake"
  "/root/repo/src/embed/CMakeFiles/hetgmp_embed.dir/DependInfo.cmake"
  "/root/repo/src/sync/CMakeFiles/hetgmp_sync.dir/DependInfo.cmake"
  "/root/repo/src/comm/CMakeFiles/hetgmp_comm.dir/DependInfo.cmake"
  "/root/repo/src/partition/CMakeFiles/hetgmp_partition.dir/DependInfo.cmake"
  "/root/repo/src/graph/CMakeFiles/hetgmp_graph.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hetgmp_data.dir/DependInfo.cmake"
  "/root/repo/src/nn/CMakeFiles/hetgmp_nn.dir/DependInfo.cmake"
  "/root/repo/src/tensor/CMakeFiles/hetgmp_tensor.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/hetgmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
