// Fault-injection property tests and wire-format corruption tests
// (DESIGN.md §5g fault matrix): any seeded fault schedule must end in
// success or a propagated Status within the deadline — never a hang,
// never an abort on the receive side. Send-side oversize frames are the
// one deliberate CHECK (programmer error), locked in by a death test.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault_transport.h"
#include "comm/protocol.h"
#include "comm/socket_transport.h"
#include "comm/transport.h"
#include "comm/wire.h"
#include "multiproc_driver.h"

namespace hetgmp {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --------------------------------------------------------------- wire.h

TEST(WireTest, Crc32KnownAnswer) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(WireCrc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(WireCrc32("", 0), 0u);
}

FrameHeader MakeValidHeader(uint32_t payload_len = 8) {
  FrameHeader hdr;
  hdr.src = 0;
  hdr.dst = 1;
  hdr.cls = 1;
  hdr.type = FrameType::kData;
  hdr.tag = 7;
  hdr.payload_len = payload_len;
  hdr.payload_crc = 0x12345678;
  return hdr;
}

TEST(WireTest, HeaderRoundTrip) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MakeValidHeader(), buf);
  FrameHeader out;
  ASSERT_TRUE(DecodeFrameHeader(buf, &out).ok());
  EXPECT_EQ(out.src, 0);
  EXPECT_EQ(out.dst, 1);
  EXPECT_EQ(out.cls, 1);
  EXPECT_EQ(out.type, FrameType::kData);
  EXPECT_EQ(out.tag, 7u);
  EXPECT_EQ(out.payload_len, 8u);
  EXPECT_EQ(out.payload_crc, 0x12345678u);
}

TEST(WireTest, MalformedHeadersRejectedAsInternal) {
  uint8_t good[kFrameHeaderBytes];
  EncodeFrameHeader(MakeValidHeader(), good);
  FrameHeader out;

  // Bad magic.
  uint8_t bad[kFrameHeaderBytes];
  std::memcpy(bad, good, sizeof(bad));
  bad[0] ^= 0xFF;
  EXPECT_EQ(DecodeFrameHeader(bad, &out).code(), StatusCode::kInternal);

  // Any single header byte flipped: caught by the header CRC.
  for (size_t i = 4; i < kFrameHeaderBytes; ++i) {
    std::memcpy(bad, good, sizeof(bad));
    bad[i] ^= 0x01;
    EXPECT_EQ(DecodeFrameHeader(bad, &out).code(), StatusCode::kInternal)
        << "flip of header byte " << i << " was not detected";
  }

  // Semantically invalid but CRC-consistent headers: re-encode each.
  FrameHeader hdr = MakeValidHeader();
  hdr.cls = 9;  // class out of range
  EncodeFrameHeader(hdr, bad);
  EXPECT_EQ(DecodeFrameHeader(bad, &out).code(), StatusCode::kInternal);

  hdr = MakeValidHeader();
  hdr.type = static_cast<FrameType>(200);  // unknown frame type
  EncodeFrameHeader(hdr, bad);
  EXPECT_EQ(DecodeFrameHeader(bad, &out).code(), StatusCode::kInternal);
}

TEST(WireDeathTest, OversizePayloadIsASendSideCheck) {
#ifdef HETGMP_TSAN_ENABLED
  GTEST_SKIP() << "death tests fork; skipped under TSan";
#endif
  FrameHeader hdr = MakeValidHeader();
  hdr.payload_len = kMaxFramePayload + 1;
  uint8_t buf[kFrameHeaderBytes];
  // Sender-side oversize is a programmer error (chunking is the caller's
  // job): CHECK-abort, never bytes on the wire. The *receive* side must
  // reject the same header as a Status instead (next assertion).
  EXPECT_DEATH(EncodeFrameHeader(hdr, buf), "payload");

  // Hand-craft the oversize header with a valid CRC to prove the decode
  // path stays Status-shaped.
  uint8_t raw[kFrameHeaderBytes] = {};
  raw[0] = 'H';
  raw[1] = 'G';
  raw[2] = 'M';
  raw[3] = 'P';
  raw[8] = 1;                      // cls
  const uint32_t len = kMaxFramePayload + 1;
  std::memcpy(raw + 16, &len, 4);  // payload_len (LE host assumed for test)
  const uint32_t hcrc = WireCrc32(raw, 24);
  std::memcpy(raw + 24, &hcrc, 4);
  FrameHeader out;
  EXPECT_EQ(DecodeFrameHeader(raw, &out).code(), StatusCode::kInternal);
}

// ------------------------------------------------- socket stream faults

TEST(SocketFaultTest, GarbageBytesOnTheStreamAreInternalNotAbort) {
  Result<std::vector<std::vector<int>>> mesh =
      SocketFabric::CreateLocalMesh(2);
  ASSERT_TRUE(mesh.ok());
  TransportOptions opts;
  opts.recv_timeout_ms = 2000;
  std::unique_ptr<SocketFabric> t1 =
      SocketFabric::FromFds(1, 2, mesh.value()[1], opts);
  // Impersonate rank 0 with raw garbage (no valid frame header).
  const char garbage[64] = "this is not a HGMP frame at all............";
  ASSERT_EQ(::write(mesh.value()[0][1], garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  std::vector<uint8_t> payload;
  Status st = t1->Recv(0, TrafficClass::kEmbedding, 0, &payload);
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  // The connection is poisoned, not retried: later calls fail fast.
  st = t1->Recv(0, TrafficClass::kEmbedding, 0, &payload);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  ::close(mesh.value()[0][1]);
  ::close(mesh.value()[0][0]);
}

TEST(SocketFaultTest, CorruptPayloadCrcIsInternal) {
  Result<std::vector<std::vector<int>>> mesh =
      SocketFabric::CreateLocalMesh(2);
  ASSERT_TRUE(mesh.ok());
  TransportOptions opts;
  opts.recv_timeout_ms = 2000;
  std::unique_ptr<SocketFabric> t1 =
      SocketFabric::FromFds(1, 2, mesh.value()[1], opts);
  // A frame whose header checks out but whose payload was corrupted in
  // flight: payload_crc is over different bytes.
  FrameHeader hdr;
  hdr.src = 0;
  hdr.dst = 1;
  hdr.cls = 0;
  hdr.type = FrameType::kData;
  hdr.tag = 5;
  hdr.payload_len = 4;
  hdr.payload_crc = WireCrc32("good", 4);
  std::vector<uint8_t> frame;
  AppendFrame(hdr, "evil", &frame);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::write(mesh.value()[0][1], frame.data() + off, frame.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  std::vector<uint8_t> payload;
  const Status st = t1->Recv(0, TrafficClass::kEmbedding, 5, &payload);
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.ToString();
  ::close(mesh.value()[0][1]);
  ::close(mesh.value()[0][0]);
}

// --------------------------------------------- typed-message truncation

TEST(ProtocolFaultTest, TruncatedTypedMessagesDecodeToStatus) {
  IndexClockMsg ic;
  ic.ids = {1, 2, 3};
  ic.clock = 42;
  const std::vector<uint8_t> enc = EncodeIndexClock(ic);
  IndexClockMsg out;
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_EQ(DecodeIndexClock(enc.data(), cut, &out).code(),
              StatusCode::kInvalidArgument)
        << "prefix of " << cut << " bytes decoded successfully";
  }
  ASSERT_TRUE(DecodeIndexClock(enc.data(), enc.size(), &out).ok());
  EXPECT_EQ(out.ids, ic.ids);

  EmbeddingBlockMsg eb;
  eb.dim = 3;
  eb.ids = {9, 8};
  eb.values = {0, 1, 2, 3, 4, 5};
  const std::vector<uint8_t> enc2 = EncodeEmbeddingBlock(eb);
  EmbeddingBlockMsg out2;
  for (size_t cut = 0; cut < enc2.size(); cut += 5) {
    EXPECT_EQ(DecodeEmbeddingBlock(enc2.data(), cut, &out2).code(),
              StatusCode::kInvalidArgument);
  }
  ASSERT_TRUE(DecodeEmbeddingBlock(enc2.data(), enc2.size(), &out2).ok());
  EXPECT_EQ(out2.values, eb.values);
  // Wrong decoder for the kind byte is also a Status.
  EXPECT_EQ(DecodeIndexClock(enc2.data(), enc2.size(), &out).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------- seeded fault schedules

// One scripted protocol schedule under a seeded FaultyTransport pair.
// The property: every operation returns (ok or Status) within its
// deadline, the whole schedule completes in bounded wall time, and any
// op that reports ok delivered an intact message.
void RunFaultSchedule(Transport* raw0, Transport* raw1, uint64_t seed,
                      int timeout_ms) {
  FaultOptions fopts;
  fopts.seed = seed;
  fopts.drop_prob = 0.15;
  fopts.truncate_prob = 0.15;
  fopts.duplicate_prob = 0.15;
  fopts.delay_prob = 0.20;
  FaultyTransport f0(raw0, fopts);
  fopts.seed = seed ^ 0x9E3779B97F4A7C15ULL;  // independent peer stream
  FaultyTransport f1(raw1, fopts);

  const int kRounds = 6;
  const int64_t t0 = NowMs();
  for (int round = 0; round < kRounds; ++round) {
    IndexClockMsg ic;
    ic.ids = {round, round + 1, round + 2};
    ic.clock = static_cast<uint64_t>(round);
    Status st = SendIndexClock(&f0, 1, static_cast<uint32_t>(round), ic);
    EXPECT_TRUE(st.ok() || !st.message().empty()) << "empty error";

    IndexClockMsg got;
    const int64_t op0 = NowMs();
    st = RecvIndexClock(&f1, 0, static_cast<uint32_t>(round), &got);
    const int64_t op_ms = NowMs() - op0;
    EXPECT_LE(op_ms, timeout_ms + 2000)
        << "seed " << seed << " round " << round << ": recv overshot its "
        << "deadline — the no-hang property failed";
    if (st.ok()) {
      EXPECT_EQ(got.ids, ic.ids)
          << "seed " << seed << ": ok recv delivered corrupt payload";
    } else {
      // Corruption and loss must land in the documented taxonomy.
      EXPECT_TRUE(st.code() == StatusCode::kDeadlineExceeded ||
                  st.code() == StatusCode::kInvalidArgument ||
                  st.code() == StatusCode::kInternal ||
                  st.code() == StatusCode::kUnavailable)
          << st.ToString();
    }

    // Reverse direction: embedding block.
    EmbeddingBlockMsg eb;
    eb.dim = 2;
    eb.ids = {100 + round};
    eb.values = {static_cast<float>(round), -1.0f};
    st = SendEmbeddingBlock(&f1, 0, static_cast<uint32_t>(round), eb);
    EmbeddingBlockMsg got_eb;
    st = RecvEmbeddingBlock(&f0, 1, static_cast<uint32_t>(round), &got_eb);
    if (st.ok()) {
      EXPECT_EQ(got_eb.values, eb.values) << "seed " << seed;
    }
  }
  f0.ReleaseDelayed();
  f1.ReleaseDelayed();
  const int64_t total_ms = NowMs() - t0;
  EXPECT_LE(total_ms, 2 * kRounds * (timeout_ms + 2000))
      << "seed " << seed << ": schedule wall time unbounded";
}

TEST(FaultScheduleTest, SeededSchedulesTerminateInProc) {
  TransportOptions opts;
  opts.recv_timeout_ms = 120;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    InProcTransportGroup group(2, nullptr, opts);
    RunFaultSchedule(group.endpoint(0), group.endpoint(1), seed,
                     opts.recv_timeout_ms);
  }
}

TEST(FaultScheduleTest, SeededSchedulesTerminateOnSockets) {
  TransportOptions opts;
  opts.recv_timeout_ms = 120;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Result<std::vector<std::vector<int>>> mesh =
        SocketFabric::CreateLocalMesh(2);
    ASSERT_TRUE(mesh.ok());
    std::unique_ptr<SocketFabric> t0 =
        SocketFabric::FromFds(0, 2, mesh.value()[0], opts);
    std::unique_ptr<SocketFabric> t1 =
        SocketFabric::FromFds(1, 2, mesh.value()[1], opts);
    RunFaultSchedule(t0.get(), t1.get(), seed, opts.recv_timeout_ms);
  }
}

TEST(FaultScheduleTest, SameSeedSameInjections) {
  TransportOptions opts;
  opts.recv_timeout_ms = 100;
  auto run = [&]() -> std::vector<std::string> {
    InProcTransportGroup group(2, nullptr, opts);
    FaultOptions fopts;
    fopts.seed = 1234;
    fopts.drop_prob = 0.3;
    fopts.truncate_prob = 0.3;
    fopts.delay_prob = 0.3;
    FaultyTransport f(group.endpoint(0), fopts);
    const char data[16] = "deterministic!!";
    for (uint32_t i = 0; i < 20; ++i) {
      HETGMP_IGNORE_STATUS(
          f.Send(1, TrafficClass::kEmbedding, i, data, sizeof(data)));
    }
    f.ReleaseDelayed();
    return f.injected();
  };
  const std::vector<std::string> a = run();
  const std::vector<std::string> b = run();
  EXPECT_FALSE(a.empty()) << "probabilities high enough, nothing injected?";
  EXPECT_EQ(a, b) << "fault schedule is not a pure function of the seed";
}

}  // namespace
}  // namespace hetgmp
