// Parallel hybrid partitioner: determinism, validity, and the quality-
// parity harness from ISSUE 4 — the block-parallel 1D pass must land
// within a few percent of the sequential Algorithm 1 baseline on
// bench_table3-style workloads (δ_c and balance), across partition
// counts, weights, and capacities. scripts/check.sh's TSan modes run this
// file to certify the parallel pass race-free.

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"
#include "graph/bigraph.h"
#include "partition/hybrid_partitioner.h"
#include "partition/quality.h"
#include "partition/random_partitioner.h"

namespace hetgmp {
namespace {

void ExpectValidPartition(const Partition& p, const Bigraph& g, int n) {
  EXPECT_EQ(p.num_parts, n);
  EXPECT_EQ(p.num_samples(), g.num_samples());
  EXPECT_EQ(p.num_embeddings(), g.num_embeddings());
  for (int o : p.sample_owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, n);
  }
  for (int o : p.embedding_owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, n);
  }
  ASSERT_EQ(static_cast<int>(p.secondaries.size()), n);
  for (int w = 0; w < n; ++w) {
    std::set<FeatureId> seen;
    for (FeatureId x : p.secondaries[w]) {
      EXPECT_NE(p.embedding_owner[x], w)
          << "secondary duplicates local primary";
      EXPECT_TRUE(seen.insert(x).second) << "duplicate secondary";
    }
  }
}

// The quality-parity harness: sequential vs parallel on the Table 3
// dataset shapes (scaled down for test time). ε is looser than the bench
// acceptance bound (5% at 1M edges) because at this scale a single block
// covers a larger fraction of the graph, but the parallel result must
// also clear the same absolute bar as the sequential pass (≫ random),
// so a quality regression cannot hide inside the slack.
TEST(ParallelHybridTest, QualityParityOnTable3Workloads) {
  for (const SyntheticCtrConfig& cfg :
       {AvazuLikeConfig(0.2), CriteoLikeConfig(0.2)}) {
    CtrDataset data = GenerateSyntheticCtr(cfg);
    Bigraph graph(data);

    HybridPartitionerOptions seq;
    seq.rounds = 3;
    seq.num_threads = 1;
    HybridPartitionerOptions par = seq;
    par.num_threads = 4;

    Partition ps = HybridPartitioner(seq).Run(graph, 8);
    Partition pp = HybridPartitioner(par).Run(graph, 8);
    ExpectValidPartition(pp, graph, 8);

    const PartitionQuality qs = EvaluatePartition(graph, ps);
    const PartitionQuality qp = EvaluatePartition(graph, pp);
    const PartitionQuality qr =
        EvaluatePartition(graph, RandomPartitioner().Run(graph, 8));

    // δ_c parity: within 10% of sequential (either direction is fine;
    // only degradation is bounded).
    EXPECT_LE(static_cast<double>(qp.remote_accesses),
              static_cast<double>(qs.remote_accesses) * 1.10)
        << cfg.name;
    // Absolute floor: the paper's ≥37% reduction vs random must survive
    // parallelization.
    EXPECT_LT(static_cast<double>(qp.remote_accesses),
              static_cast<double>(qr.remote_accesses) * 0.63)
        << cfg.name;
    // Balance parity: same bounds the sequential pass is held to.
    const double avg = graph.num_samples() / 8.0;
    EXPECT_LT(qp.max_samples, avg * 1.6) << cfg.name;
    EXPECT_GT(qp.min_samples, avg * 0.4) << cfg.name;
  }
}

class ParallelFixture : public ::testing::Test {
 protected:
  static SyntheticCtrConfig Config() {
    SyntheticCtrConfig cfg;
    cfg.num_samples = 4000;
    cfg.num_fields = 10;
    cfg.num_features = 1200;
    cfg.num_clusters = 8;
    cfg.seed = 21;
    return cfg;
  }
  ParallelFixture()
      : dataset_(GenerateSyntheticCtr(Config())), graph_(dataset_) {}

  CtrDataset dataset_;
  Bigraph graph_;
};

TEST_F(ParallelFixture, DeterministicForFixedOptions) {
  HybridPartitionerOptions opt;
  opt.num_threads = 4;
  opt.rounds = 2;
  opt.seed = 7;
  Partition a = HybridPartitioner(opt).Run(graph_, 8);
  Partition b = HybridPartitioner(opt).Run(graph_, 8);
  EXPECT_EQ(a.sample_owner, b.sample_owner);
  EXPECT_EQ(a.embedding_owner, b.embedding_owner);
  EXPECT_EQ(a.secondaries, b.secondaries);
}

TEST_F(ParallelFixture, ValidAcrossThreadCountsAndParts) {
  for (int threads : {2, 3, 8}) {
    for (int parts : {1, 4, 16}) {
      HybridPartitionerOptions opt;
      opt.num_threads = threads;
      opt.rounds = 1;
      Partition p = HybridPartitioner(opt).Run(graph_, parts);
      ExpectValidPartition(p, graph_, parts);
    }
  }
}

TEST_F(ParallelFixture, SmallBlocksAndFrequentRecompute) {
  // Stress the block machinery: tiny blocks (many barriers, minimal
  // staleness) and recompute after every block must still produce a
  // high-quality valid partition.
  HybridPartitionerOptions opt;
  opt.num_threads = 4;
  opt.rounds = 2;
  opt.block_size = 64;
  opt.recompute_blocks = 1;
  Partition p = HybridPartitioner(opt).Run(graph_, 8);
  ExpectValidPartition(p, graph_, 8);
  const PartitionQuality q = EvaluatePartition(graph_, p);
  EXPECT_LT(q.RemoteFraction(), 0.6);  // random would be ~0.875
}

TEST_F(ParallelFixture, WeightedVariantPrefersCheapLinksInParallel) {
  std::vector<std::vector<double>> w(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        w[i][j] = 0;
      } else if (i / 2 != j / 2) {
        w[i][j] = 10.0;
      }
    }
  }
  HybridPartitionerOptions uniform;
  uniform.secondary_fraction = 0.0;
  uniform.num_threads = 4;
  HybridPartitionerOptions weighted = uniform;
  weighted.comm_weight = w;
  Partition pu = HybridPartitioner(uniform).Run(graph_, 4);
  Partition pw = HybridPartitioner(weighted).Run(graph_, 4);
  const auto qu = EvaluatePartition(graph_, pu, w);
  const auto qw = EvaluatePartition(graph_, pw, w);
  EXPECT_LT(qw.weighted_remote, qu.weighted_remote);
}

TEST_F(ParallelFixture, WorkerCapacityRespectedInParallel) {
  HybridPartitionerOptions opt;
  opt.secondary_fraction = 0.0;
  opt.num_threads = 4;
  opt.worker_capacity = {0.5, 1.0, 1.0, 1.0};
  Partition p = HybridPartitioner(opt).Run(graph_, 4);
  std::vector<int64_t> counts(4, 0);
  for (int o : p.sample_owner) ++counts[o];
  const double expected_slow = graph_.num_samples() * 0.5 / 3.5;
  EXPECT_NEAR(static_cast<double>(counts[0]), expected_slow,
              expected_slow * 0.35);
  for (int w = 1; w < 4; ++w) {
    EXPECT_GT(counts[w], counts[0]);
  }
}

TEST_F(ParallelFixture, SecondariesMatchSequentialRanking) {
  // The 2D candidate ranking is read-only fan-out; for identical 1D
  // inputs it must be byte-identical regardless of thread count. Force
  // identical 1D inputs by running zero rounds.
  HybridPartitionerOptions seq;
  seq.rounds = 0;
  seq.num_threads = 1;
  seq.secondary_fraction = 0.02;
  HybridPartitionerOptions par = seq;
  par.num_threads = 4;
  Partition a = HybridPartitioner(seq).Run(graph_, 8);
  Partition b = HybridPartitioner(par).Run(graph_, 8);
  ASSERT_EQ(a.sample_owner, b.sample_owner);
  ASSERT_EQ(a.embedding_owner, b.embedding_owner);
  EXPECT_EQ(a.secondaries, b.secondaries);
}

}  // namespace
}  // namespace hetgmp
