#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "metrics/auc.h"

namespace hetgmp {
namespace {

SyntheticCtrConfig SmallConfig() {
  SyntheticCtrConfig cfg;
  cfg.name = "small";
  cfg.num_samples = 2000;
  cfg.num_fields = 8;
  cfg.num_features = 600;
  cfg.num_clusters = 4;
  cfg.seed = 7;
  return cfg;
}

// --------------------------------------------------------------- Dataset

TEST(CtrDatasetTest, CsrInvariants) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  EXPECT_EQ(d.num_samples(), 2000);
  EXPECT_EQ(d.num_fields(), 8);
  EXPECT_EQ(d.feature_ids().size(), 2000u * 8u);
  EXPECT_EQ(static_cast<int>(d.field_offsets().size()), 9);
  EXPECT_EQ(d.field_offsets().front(), 0);
  EXPECT_EQ(d.field_offsets().back(), d.num_features());
}

TEST(CtrDatasetTest, EveryFeatureInItsFieldRange) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  for (int64_t s = 0; s < d.num_samples(); ++s) {
    const FeatureId* feats = d.sample_features(s);
    for (int f = 0; f < d.num_fields(); ++f) {
      EXPECT_GE(feats[f], d.field_offsets()[f]);
      EXPECT_LT(feats[f], d.field_offsets()[f + 1]);
    }
  }
}

TEST(CtrDatasetTest, LabelsAreBinary) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  int ones = 0;
  for (float y : d.labels()) {
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
    ones += y > 0.5f;
  }
  // Neither class should be (almost) empty.
  EXPECT_GT(ones, d.num_samples() / 20);
  EXPECT_LT(ones, d.num_samples() * 19 / 20);
}

TEST(CtrDatasetTest, FieldOfFeatureBinarySearch) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  for (int f = 0; f < d.num_fields(); ++f) {
    EXPECT_EQ(d.FieldOfFeature(d.field_offsets()[f]), f);
    EXPECT_EQ(d.FieldOfFeature(d.field_offsets()[f + 1] - 1), f);
  }
}

TEST(CtrDatasetTest, SplitTailPartitionsSamples) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  const int64_t before = d.num_samples();
  const std::vector<FeatureId> all = d.feature_ids();
  CtrDataset test = d.SplitTail(0.2);
  EXPECT_EQ(d.num_samples() + test.num_samples(), before);
  EXPECT_EQ(test.num_samples(), 400);
  // Feature space and fields are shared.
  EXPECT_EQ(test.num_features(), d.num_features());
  EXPECT_EQ(test.num_fields(), d.num_fields());
  // The tail's features equal the original tail.
  for (int64_t s = 0; s < test.num_samples(); ++s) {
    const FeatureId* feats = test.sample_features(s);
    for (int f = 0; f < test.num_fields(); ++f) {
      EXPECT_EQ(feats[f],
                all[(d.num_samples() + s) * d.num_fields() + f]);
    }
  }
}

TEST(CtrDatasetTest, FeatureFrequenciesSumToAccesses) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  std::vector<int64_t> freq = d.FeatureFrequencies();
  int64_t total = 0;
  for (int64_t f : freq) total += f;
  EXPECT_EQ(total, d.num_samples() * d.num_fields());
}

// ------------------------------------------------------------- Generator

TEST(SyntheticTest, DeterministicForSeed) {
  CtrDataset a = GenerateSyntheticCtr(SmallConfig());
  CtrDataset b = GenerateSyntheticCtr(SmallConfig());
  EXPECT_EQ(a.feature_ids(), b.feature_ids());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticCtrConfig cfg = SmallConfig();
  CtrDataset a = GenerateSyntheticCtr(cfg);
  cfg.seed = 8;
  CtrDataset b = GenerateSyntheticCtr(cfg);
  EXPECT_NE(a.feature_ids(), b.feature_ids());
}

TEST(SyntheticTest, AccessSkewPresent) {
  // The Zipf popularity should give the top 1% of features a large share
  // of accesses — the skewness property of §4.
  // With 600 features the "top 1%" is just 6 features; they must still
  // absorb far more than their uniform share (1%).
  DatasetStats s = ComputeDatasetStats(GenerateSyntheticCtr(SmallConfig()));
  EXPECT_GT(s.top1pct_share, 0.05);
  EXPECT_GT(s.gini, 0.4);
}

TEST(SyntheticTest, HigherThetaMoreSkew) {
  SyntheticCtrConfig mild = SmallConfig();
  mild.zipf_theta = 0.6;
  SyntheticCtrConfig heavy = SmallConfig();
  heavy.zipf_theta = 1.5;
  const DatasetStats sm = ComputeDatasetStats(GenerateSyntheticCtr(mild));
  const DatasetStats sh = ComputeDatasetStats(GenerateSyntheticCtr(heavy));
  EXPECT_GT(sh.top1pct_share, sm.top1pct_share);
}

TEST(SyntheticTest, TeacherLogitsScoreAboveChance) {
  std::vector<float> teacher;
  CtrDataset d = GenerateSyntheticCtr(SmallConfig(), &teacher);
  ASSERT_EQ(teacher.size(), static_cast<size_t>(d.num_samples()));
  const double auc = ComputeAuc(teacher, d.labels());
  // The teacher is the Bayes-optimal scorer; it must be far above chance.
  EXPECT_GT(auc, 0.75);
}

TEST(SyntheticTest, PresetsMatchPaperFieldCounts) {
  EXPECT_EQ(AvazuLikeConfig().num_fields, 22);
  EXPECT_EQ(CriteoLikeConfig().num_fields, 26);
  EXPECT_EQ(CompanyLikeConfig().num_fields, 43);
  // Table 1 ordering: company has the most features per sample count.
  EXPECT_GT(CompanyLikeConfig().num_features,
            CriteoLikeConfig().num_features);
  EXPECT_GT(CriteoLikeConfig().num_features,
            AvazuLikeConfig().num_features);
}

TEST(SyntheticTest, ScaleParameterScalesSizes) {
  SyntheticCtrConfig half = CriteoLikeConfig(0.5);
  SyntheticCtrConfig full = CriteoLikeConfig(1.0);
  EXPECT_EQ(half.num_samples * 2, full.num_samples);
  EXPECT_EQ(half.num_features * 2, full.num_features);
}

TEST(SyntheticTest, ClusterAffinityCreatesLocality) {
  // With high affinity, samples from one cluster reuse a small slice of
  // each field; with zero affinity they roam the whole field. Compare the
  // number of distinct features touched by the first 200 samples.
  SyntheticCtrConfig local = SmallConfig();
  local.cluster_affinity = 1.0;
  SyntheticCtrConfig global = SmallConfig();
  global.cluster_affinity = 0.0;
  auto distinct = [](const CtrDataset& d) {
    std::set<FeatureId> seen;
    for (int64_t s = 0; s < 200; ++s) {
      for (int f = 0; f < d.num_fields(); ++f) {
        seen.insert(d.sample_features(s)[f]);
      }
    }
    return seen.size();
  };
  EXPECT_LT(distinct(GenerateSyntheticCtr(local)) * 3,
            distinct(GenerateSyntheticCtr(global)) * 4);
}

// ----------------------------------------------------------------- Stats

TEST(DatasetStatsTest, CountsMatchDataset) {
  CtrDataset d = GenerateSyntheticCtr(SmallConfig());
  DatasetStats s = ComputeDatasetStats(d);
  EXPECT_EQ(s.num_samples, d.num_samples());
  EXPECT_EQ(s.num_features, d.num_features());
  EXPECT_EQ(s.num_fields, d.num_fields());
  EXPECT_EQ(s.num_accesses, d.num_samples() * d.num_fields());
  EXPECT_LE(s.distinct_features, s.num_features);
  EXPECT_GT(s.distinct_features, 0);
  EXPECT_GT(s.max_frequency, 0.0);
  EXPECT_LE(s.max_frequency, 1.0);
  EXPECT_GE(s.gini, 0.0);
  EXPECT_LE(s.gini, 1.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(DatasetStatsTest, UniformDataHasLowGini) {
  // A hand-built dataset where every feature is accessed exactly once.
  const int n = 64;
  std::vector<int64_t> offsets = {0, n};
  std::vector<FeatureId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  CtrDataset d("uniform", 1, offsets, ids, std::vector<float>(n, 0.0f));
  DatasetStats s = ComputeDatasetStats(d);
  EXPECT_NEAR(s.gini, 0.0, 0.02);
  EXPECT_NEAR(s.max_frequency, 1.0 / n, 1e-9);
}

class ScaleSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweepTest, GeneratorHandlesScale) {
  SyntheticCtrConfig cfg = AvazuLikeConfig(GetParam());
  cfg.num_samples = std::min<int64_t>(cfg.num_samples, 5000);
  CtrDataset d = GenerateSyntheticCtr(cfg);
  EXPECT_GT(d.num_samples(), 0);
  EXPECT_GT(d.num_features(), 0);
  EXPECT_EQ(d.num_fields(), 22);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweepTest,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace hetgmp
